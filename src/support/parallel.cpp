#include "support/parallel.hpp"

#include <cstdlib>

namespace drbml::support {

int resolve_jobs(int jobs) {
  if (jobs > 0) return jobs;
  if (const char* env = std::getenv("DRBML_JOBS")) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  const unsigned hc = std::thread::hardware_concurrency();
  return hc > 0 ? static_cast<int>(hc) : 1;
}

ThreadPool::ThreadPool(int threads) {
  workers_.reserve(threads > 0 ? static_cast<std::size_t>(threads) : 0);
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::run(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty()) {
    // Inline pool: the exact serial path, in index order.
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::unique_lock<std::mutex> lock(mu_);
  fn_ = &fn;
  batch_size_ = n;
  next_index_ = 0;
  in_flight_ = 0;
  error_ = nullptr;
  ++generation_;
  work_cv_.notify_all();
  done_cv_.wait(lock, [this] {
    return next_index_ >= batch_size_ && in_flight_ == 0;
  });
  fn_ = nullptr;
  if (error_ != nullptr) {
    std::exception_ptr err = error_;
    error_ = nullptr;
    std::rethrow_exception(err);
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_generation = 0;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [&] {
      return stop_ || (generation_ != seen_generation &&
                       next_index_ < batch_size_);
    });
    if (stop_) return;
    const std::uint64_t gen = generation_;
    while (gen == generation_ && next_index_ < batch_size_) {
      // After a task throws, drain the batch without running the rest:
      // the caller rethrows, so partial results are never observed.
      if (error_ != nullptr) {
        next_index_ = batch_size_;
        break;
      }
      const std::size_t index = next_index_++;
      ++in_flight_;
      lock.unlock();
      std::exception_ptr err;
      try {
        (*fn_)(index);
      } catch (...) {
        err = std::current_exception();
      }
      lock.lock();
      --in_flight_;
      if (err != nullptr && error_ == nullptr) error_ = err;
    }
    seen_generation = gen;
    if (next_index_ >= batch_size_ && in_flight_ == 0) {
      done_cv_.notify_all();
    }
  }
}

TaskPool::TaskPool(int threads, std::size_t queue_limit)
    : queue_limit_(queue_limit) {
  const int n = threads > 0 ? threads : 1;
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

TaskPool::~TaskPool() {
  close();
  drain();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

bool TaskPool::try_submit(int priority, std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return false;
    if (queue_limit_ > 0 && queue_.size() >= queue_limit_) return false;
    queue_.push(Task{priority, next_seq_++, std::move(fn)});
  }
  work_cv_.notify_one();
  return true;
}

void TaskPool::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void TaskPool::close() {
  std::lock_guard<std::mutex> lock(mu_);
  closed_ = true;
}

std::size_t TaskPool::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

std::size_t TaskPool::in_flight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_flight_;
}

std::uint64_t TaskPool::executed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return executed_;
}

std::uint64_t TaskPool::task_exceptions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return task_exceptions_;
}

bool TaskPool::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

void TaskPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (stop_ && queue_.empty()) return;
    // priority_queue::top() is const&; the function object has to move
    // out through const_cast because pop() discards the element anyway.
    Task task = std::move(const_cast<Task&>(queue_.top()));
    queue_.pop();
    ++in_flight_;
    lock.unlock();
    try {
      task.fn();
    } catch (...) {
      lock.lock();
      ++task_exceptions_;
      lock.unlock();
    }
    lock.lock();
    --in_flight_;
    ++executed_;
    if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
  }
}

}  // namespace drbml::support
