// Corpus entries: additional pattern families -- transposed subscripts,
// while/do-while regions, memset, partial atomics, thread-range
// partitioning, buffer swaps, multiplicative reductions, and the
// order-dependent lock-window races used by the exploration engine.
#include "drb/corpus.hpp"

namespace drbml::drb {

namespace {

PairSpec pair(const char* w_expr, int w_occ, char w_op, const char* r_expr,
              int r_occ, char r_op) {
  PairSpec p;
  p.var0 = VarSpec{w_expr, w_occ, w_op};
  p.var1 = VarSpec{r_expr, r_occ, r_op};
  return p;
}

}  // namespace

void register_extra_entries(CorpusBuilder& b) {
  {
    CorpusEntry e;
    e.race = true;
    e.label = "Y1";
    e.pattern = "transpose";
    e.description =
        "Transposed subscripts: element (i,j) written while (j,i) is read.";
    e.body = R"(#include <stdio.h>
int main()
{
  int i;
  int j;
  double t[18][18];

  for (i = 0; i < 18; i++)
    for (j = 0; j < 18; j++)
      t[i][j] = i + 2 * j;
#pragma omp parallel for private(j)
  for (i = 0; i < 18; i++)
    for (j = 0; j < 18; j++)
      t[i][j] = t[j][i] + 1.0;
  printf("%f\n", t[2][3]);
  return 0;
}
)";
    e.pairs = {pair("t[i][j]", 1, 'w', "t[j][i]", 0, 'r')};
    b.add("transpose-orig", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = true;
    e.label = "Y3";
    e.pattern = "while-region";
    e.description = "While loop inside the region pops a shared cursor.";
    e.body = R"(#include <stdio.h>
int main()
{
  int next = 0;
  int taken[40];

#pragma omp parallel num_threads(4)
  {
    while (next < 16) {
      taken[next] = omp_get_thread_num();
      next = next + 1;
    }
  }
  printf("next=%d\n", next);
  return 0;
}
)";
    e.pairs = {pair("next", 3, 'w', "next", 2, 'r')};
    b.add("whilecursor-orig", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = true;
    e.label = "Y3";
    e.pattern = "memset-overlap";
    e.description = "memset inside the loop clears a shared prefix.";
    e.body = R"(#include <stdio.h>
#include <string.h>
int main()
{
  int i;
  int buf[64];

  for (i = 0; i < 64; i++)
    buf[i] = i;
#pragma omp parallel for
  for (i = 0; i < 32; i++) {
    memset(buf, 0, 8);
    buf[i + 8] = i;
  }
  printf("buf[0]=%d\n", buf[0]);
  return 0;
}
)";
    e.pairs = {pair("buf", 2, 'w', "buf", 2, 'w')};
    b.add("memsetprefix-orig", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = true;
    e.label = "Y3";
    e.pattern = "atomic-read-partial";
    e.description =
        "Reads use atomic read but the update itself is unprotected.";
    e.body = R"(#include <stdio.h>
int main()
{
  int i;
  int level = 0;
  int probe[64];

#pragma omp parallel for
  for (i = 0; i < 64; i++) {
    int snap;
#pragma omp atomic read
    snap = level;
    probe[i] = snap;
    level = level + 1;
  }
  printf("level=%d\n", level);
  return 0;
}
)";
    e.pairs = {pair("level", 2, 'w', "level", 1, 'r')};
    b.add("atomicreadpartial-orig", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = true;
    e.label = "Y2";
    e.pattern = "reduction-wrong-var";
    e.description =
        "Reduction clause covers one accumulator; a second one is left "
        "shared.";
    e.body = R"(#include <stdio.h>
int main()
{
  int i;
  int total = 0;
  int worst = 0;
  int v[96];

  for (i = 0; i < 96; i++)
    v[i] = (i * 13) % 31;
#pragma omp parallel for reduction(+:total)
  for (i = 0; i < 96; i++) {
    total = total + v[i];
    if (v[i] > worst)
      worst = v[i];
  }
  printf("%d %d\n", total, worst);
  return 0;
}
)";
    e.pairs = {pair("worst", 2, 'w', "worst", 1, 'r')};
    b.add("reductionwrongvar-orig", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = true;
    e.label = "Y3";
    e.pattern = "sections-nowait";
    e.description =
        "sections nowait lets a later read overlap the section writes.";
    e.body = R"(#include <stdio.h>
int main()
{
  int left = 0;
  int right = 0;
  int joined[16];

#pragma omp parallel num_threads(4)
  {
#pragma omp sections nowait
    {
#pragma omp section
      { left = 5; }
#pragma omp section
      { right = 7; }
    }
    joined[omp_get_thread_num()] = left + right;
  }
  printf("%d\n", joined[0]);
  return 0;
}
)";
    e.pairs = {pair("left", 1, 'w', "left", 2, 'r'),
               pair("right", 1, 'w', "right", 2, 'r')};
    b.add("sectionsnowait-orig", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = true;
    e.label = "Y1";
    e.pattern = "dowhile-region";
    e.description = "Do-while retry loop bumps a shared attempt counter.";
    e.body = R"(#include <stdio.h>
int main()
{
  int attempts = 0;
  int done[16];

#pragma omp parallel num_threads(4)
  {
    int mine = 0;
    do {
      attempts = attempts + 1;
      mine = mine + 1;
    } while (mine < 3);
    done[omp_get_thread_num()] = mine;
  }
  printf("attempts=%d\n", attempts);
  return 0;
}
)";
    e.pairs = {pair("attempts", 1, 'w', "attempts", 2, 'r')};
    b.add("dowhileattempts-orig", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = true;
    e.label = "Y2";
    e.pattern = "lastprivate-read";
    e.description =
        "lastprivate variable read inside the loop before its write-back.";
    e.body = R"(#include <stdio.h>
int main()
{
  int i;
  int carry = 0;
  int out[72];

#pragma omp parallel for
  for (i = 0; i < 72; i++) {
    out[i] = carry + i;
    carry = out[i] % 7;
  }
  printf("carry=%d\n", carry);
  return 0;
}
)";
    e.pairs = {pair("carry", 2, 'w', "carry", 1, 'r')};
    b.add("carrychain-orig", std::move(e));
  }

  // ------------------------------------------------------------ race-free

  {
    CorpusEntry e;
    e.race = false;
    e.label = "N1";
    e.pattern = "transpose-safe";
    e.description = "Transpose into a separate output matrix.";
    e.body = R"(#include <stdio.h>
int main()
{
  int i;
  int j;
  double t[18][18];
  double u[18][18];

  for (i = 0; i < 18; i++)
    for (j = 0; j < 18; j++)
      t[i][j] = i + 2 * j;
#pragma omp parallel for private(j)
  for (i = 0; i < 18; i++)
    for (j = 0; j < 18; j++)
      u[i][j] = t[j][i];
  printf("%f\n", u[2][3]);
  return 0;
}
)";
    b.add("transposebuffered-orig", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = false;
    e.label = "N4";
    e.pattern = "while-critical";
    e.description = "Shared cursor advanced only inside a critical section.";
    e.body = R"(#include <stdio.h>
int main()
{
  int next = 0;
  int count = 0;

#pragma omp parallel num_threads(4)
  {
    int stop = 0;
    while (stop == 0) {
#pragma omp critical
      {
        if (next < 16) {
          next = next + 1;
          count = count + 1;
        } else {
          stop = 1;
        }
      }
    }
  }
  printf("count=%d\n", count);
  return 0;
}
)";
    b.add("whilecritical-orig", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = false;
    e.label = "N1";
    e.pattern = "memset-before";
    e.description = "memset completes before the parallel region starts.";
    e.body = R"(#include <stdio.h>
#include <string.h>
int main()
{
  int i;
  int buf[64];

  memset(buf, 0, 64);
#pragma omp parallel for
  for (i = 0; i < 64; i++)
    buf[i] = buf[i] + i;
  printf("buf[5]=%d\n", buf[5]);
  return 0;
}
)";
    b.add("memsetbefore-orig", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = false;
    e.label = "N4";
    e.pattern = "atomic-both-sides";
    e.description = "Both the update and the read use atomic directives.";
    e.body = R"(#include <stdio.h>
int main()
{
  int i;
  int level = 0;
  int probe[64];

#pragma omp parallel for
  for (i = 0; i < 64; i++) {
    int snap;
#pragma omp atomic update
    level += 1;
#pragma omp atomic read
    snap = level;
    probe[i] = snap;
  }
  printf("level=%d\n", level);
  return 0;
}
)";
    b.add("atomicbothsides-orig", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = false;
    e.label = "N2";
    e.pattern = "reduction-two-vars";
    e.description = "Both accumulators listed in reduction clauses.";
    e.body = R"(#include <stdio.h>
int main()
{
  int i;
  int total = 0;
  int worst = 0;
  int v[96];

  for (i = 0; i < 96; i++)
    v[i] = (i * 13) % 31;
#pragma omp parallel for reduction(+:total) reduction(max:worst)
  for (i = 0; i < 96; i++) {
    total = total + v[i];
    if (v[i] > worst)
      worst = v[i];
  }
  printf("%d %d\n", total, worst);
  return 0;
}
)";
    b.add("reductiontwovars-orig", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = false;
    e.label = "N3";
    e.pattern = "thread-range";
    e.description =
        "Threads partition the array into disjoint ranges by thread id.";
    e.body = R"(#include <stdio.h>
int main()
{
  int grid[64];
  int i;

  for (i = 0; i < 64; i++)
    grid[i] = 0;
#pragma omp parallel num_threads(4)
  {
    int tid = omp_get_thread_num();
    int lo = tid * 16;
    int k;
    for (k = lo; k < lo + 16; k++)
      grid[k] = tid;
  }
  printf("grid[0]=%d\n", grid[0]);
  return 0;
}
)";
    b.add("threadrange-orig", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = false;
    e.label = "N2";
    e.pattern = "reduction-multiply";
    e.description = "Multiplicative reduction over a small factor table.";
    e.body = R"(#include <stdio.h>
int main()
{
  int i;
  double product = 1.0;
  double f[24];

  for (i = 0; i < 24; i++)
    f[i] = 1.0 + 0.01 * i;
#pragma omp parallel for reduction(*:product)
  for (i = 0; i < 24; i++)
    product = product * f[i];
  printf("%f\n", product);
  return 0;
}
)";
    b.add("reductionproduct-orig", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = false;
    e.label = "N1";
    e.pattern = "buffer-swap";
    e.description =
        "Ping-pong buffers via pointers; each phase reads one, writes the "
        "other.";
    e.body = R"(#include <stdio.h>
int main()
{
  int i;
  double ping[48];
  double pong[48];
  double* src;
  double* dst;

  for (i = 0; i < 48; i++)
    ping[i] = 1.0 * i;
  src = ping;
  dst = pong;
#pragma omp parallel for
  for (i = 1; i < 47; i++)
    dst[i] = 0.5 * (src[i-1] + src[i+1]);
  printf("%f\n", dst[5]);
  return 0;
}
)";
    b.add("bufferswap-orig", std::move(e));
  }
}

// Order-dependent races: the racy access pair only executes unordered on a
// minority of interleavings, so single-schedule dynamic detection misses
// them. These exist to exercise the schedule-exploration engine (PCT finds
// them; the legacy uniform schedule does not) and MUST register last so the
// DRB numbering of earlier entries stays stable.
void register_exploration_entries(CorpusBuilder& b) {
  {
    CorpusEntry e;
    e.race = true;
    e.label = "Y3";
    e.pattern = "lock-window";
    e.description =
        "Write before a critical section races with a read after it only "
        "when the reader wins the lock first.";
    e.pairs = {pair("data", 1, 'w', "data", 2, 'r')};
    e.body = R"(#include <stdio.h>
int main()
{
  int data = 0;
  int done = 0;
  int seen = 0;

#pragma omp parallel num_threads(2)
  {
    if (omp_get_thread_num() == 0) {
      data = 1;
#pragma omp critical
      {
        done = done + 1;
      }
    } else {
#pragma omp critical
      {
        done = done + 1;
      }
      seen = data;
    }
  }
  printf("%d %d\n", seen, done);
  return 0;
}
)";
    b.add("lockwindow-orig", std::move(e));
  }
}

}  // namespace drbml::drb
