#include "drb/corpus.hpp"

#include <cctype>
#include <cstdio>
#include <map>

#include "minic/source.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace drbml::drb {

namespace {

bool is_word_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Finds the n-th whole-word occurrence of `needle` in `text`; returns the
/// byte offset or npos.
std::size_t find_occurrence(const std::string& text, const std::string& needle,
                            int occurrence) {
  int seen = 0;
  std::size_t pos = 0;
  while ((pos = text.find(needle, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !is_word_char(text[pos - 1]) ||
                         !is_word_char(needle.front());
    const std::size_t end = pos + needle.size();
    const bool right_ok = end >= text.size() || !is_word_char(text[end]) ||
                          !is_word_char(needle.back());
    // `a[i]` must not match inside `a[i]x`-like spellings; also reject a
    // match whose next char extends the subscript (e.g. "a[i" in "a[i+1]").
    if (left_ok && right_ok) {
      if (seen == occurrence) return pos;
      ++seen;
    }
    ++pos;
  }
  return std::string::npos;
}

/// Converts a byte offset into 1-based (line, col).
std::pair<int, int> offset_to_linecol(const std::string& text,
                                      std::size_t offset) {
  int line = 1;
  int col = 1;
  for (std::size_t i = 0; i < offset && i < text.size(); ++i) {
    if (text[i] == '\n') {
      ++line;
      col = 1;
    } else {
      ++col;
    }
  }
  return {line, col};
}

ResolvedVar resolve_var(const std::string& trimmed, const VarSpec& spec,
                        const CorpusEntry& entry) {
  const std::size_t pos =
      find_occurrence(trimmed, spec.expr, spec.occurrence);
  if (pos == std::string::npos) {
    throw Error("corpus entry " + entry.name + ": cannot locate occurrence " +
                std::to_string(spec.occurrence) + " of '" + spec.expr + "'");
  }
  auto [line, col] = offset_to_linecol(trimmed, pos);
  ResolvedVar out;
  out.name = spec.expr;
  out.line = line;
  out.col = col;
  out.op = spec.op;
  return out;
}

}  // namespace

ResolvedEntry resolve_entry(const CorpusEntry& entry) {
  ResolvedEntry out;
  out.trimmed = minic::strip_comments(entry.body).trimmed;
  for (const auto& pair : entry.pairs) {
    ResolvedPair rp;
    rp.var0 = resolve_var(out.trimmed, pair.var0, entry);
    rp.var1 = resolve_var(out.trimmed, pair.var1, entry);
    out.pairs.push_back(std::move(rp));
  }
  return out;
}

std::string drb_code(const CorpusEntry& entry) {
  // The body may itself contain comments/blank lines; annotation
  // coordinates must be in *original file* coordinates. Render the header
  // first with a fixed line count, then compute each variable's original
  // line as: header_lines + (body line of the trimmed position).
  ResolvedEntry resolved = resolve_entry(entry);
  const minic::StripResult strip = minic::strip_comments(entry.body);

  // Inverse of the line map: trimmed line -> original body line.
  auto body_line_of = [&](int trimmed_line) {
    for (std::size_t i = 0; i < strip.line_map.size(); ++i) {
      if (strip.line_map[i] == trimmed_line) return static_cast<int>(i) + 1;
    }
    return trimmed_line;
  };

  // Header layout: "/*", name, description, one annotation line per pair,
  // "*/" -- a fixed count once pairs.size() is known.
  const int header_lines = 4 + static_cast<int>(resolved.pairs.size());

  std::string header = "/*\n";
  header += entry.name + "\n";
  header += entry.description + "\n";
  for (const auto& pair : resolved.pairs) {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "Data race pair: %s@%d:%d:%c vs. %s@%d:%d:%c\n",
                  pair.var1.name.c_str(),
                  header_lines + body_line_of(pair.var1.line), pair.var1.col,
                  static_cast<char>(std::toupper(pair.var1.op)),
                  pair.var0.name.c_str(),
                  header_lines + body_line_of(pair.var0.line), pair.var0.col,
                  static_cast<char>(std::toupper(pair.var0.op)));
    header += buf;
  }
  header += "*/\n";
  return header + entry.body;
}

void CorpusBuilder::add(std::string stem, CorpusEntry entry) {
  entry.id = static_cast<int>(entries_.size()) + 1;
  char buf[16];
  std::snprintf(buf, sizeof(buf), "DRB%03d-", entry.id);
  entry.name = std::string(buf) + stem + (entry.race ? "-yes.c" : "-no.c");
  if (entry.label.empty()) entry.label = entry.race ? "Y1" : "N1";
  entries_.push_back(std::move(entry));
}

void CorpusBuilder::add_variant(
    const CorpusEntry& base, const std::string& stem,
    const std::vector<std::pair<std::string, std::string>>& substitutions) {
  CorpusEntry v = base;
  for (const auto& [from, to] : substitutions) {
    v.body = replace_all(v.body, from, to);
    for (auto& pair : v.pairs) {
      pair.var0.expr = replace_all(pair.var0.expr, from, to);
      pair.var1.expr = replace_all(pair.var1.expr, from, to);
    }
    v.description = replace_all(v.description, from, to);
  }
  v.category = Category::AutoGen;
  add(stem, std::move(v));
}

const std::vector<CorpusEntry>& corpus() {
  static const std::vector<CorpusEntry> entries = [] {
    CorpusBuilder b;
    register_dep_entries(b);
    register_sync_entries(b);
    register_datashare_entries(b);
    register_task_entries(b);
    register_simd_target_entries(b);
    register_misc_entries(b);
    register_extra_entries(b);
    register_app_entries(b);
    register_variant_entries(b);
    register_exploration_entries(b);
    return b.take();
  }();
  return entries;
}

const CorpusEntry* find_entry(const std::string& name) {
  for (const auto& e : corpus()) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

CorpusStats corpus_stats() {
  CorpusStats s;
  for (const auto& e : corpus()) {
    ++s.total;
    if (e.race) {
      ++s.race_yes;
    } else {
      ++s.race_no;
    }
  }
  return s;
}

}  // namespace drbml::drb
