// Corpus entries: SIMD and target-offload pattern family.
#include "drb/corpus.hpp"

namespace drbml::drb {

namespace {

PairSpec pair(const char* w_expr, int w_occ, char w_op, const char* r_expr,
              int r_occ, char r_op) {
  PairSpec p;
  p.var0 = VarSpec{w_expr, w_occ, w_op};
  p.var1 = VarSpec{r_expr, r_occ, r_op};
  return p;
}

}  // namespace

void register_simd_target_entries(CorpusBuilder& b) {
  {
    CorpusEntry e;
    e.race = true;
    e.label = "Y1";
    e.pattern = "simd-truedep";
    e.description = "SIMD loop with a loop-carried true dependence.";
    e.body = R"(#include <stdio.h>
int main()
{
  int i;
  int a[100];

  for (i = 0; i < 100; i++)
    a[i] = i;
#pragma omp simd
  for (i = 0; i < 99; i++)
    a[i+1] = a[i] + 1;
  printf("a[99]=%d\n", a[99]);
  return 0;
}
)";
    e.pairs = {pair("a[i+1]", 0, 'w', "a[i]", 1, 'r')};
    b.add("simdtruedep-orig", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = true;
    e.label = "Y1";
    e.pattern = "simd-safelen-violated";
    e.description =
        "safelen(8) permits vectors wider than the dependence distance 4.";
    e.body = R"(#include <stdio.h>
int main()
{
  int i;
  int a[100];

  for (i = 0; i < 100; i++)
    a[i] = i;
#pragma omp simd safelen(8)
  for (i = 0; i < 96; i++)
    a[i+4] = a[i] + 1;
  printf("a[99]=%d\n", a[99]);
  return 0;
}
)";
    e.pairs = {pair("a[i+4]", 0, 'w', "a[i]", 1, 'r')};
    b.add("simdsafelenbad-orig", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = true;
    e.label = "Y1";
    e.pattern = "target-race";
    e.description = "target parallel for with a loop-carried dependence.";
    e.body = R"(#include <stdio.h>
int main()
{
  int i;
  int len = 100;
  int a[100];

  for (i = 0; i < len; i++)
    a[i] = i;
#pragma omp target map(tofrom: a) device(0)
#pragma omp parallel for
  for (i = 0; i < len - 1; i++)
    a[i] = a[i+1] + 1;
  printf("a[0]=%d\n", a[0]);
  return 0;
}
)";
    e.pairs = {pair("a[i]", 1, 'w', "a[i+1]", 0, 'r')};
    b.add("targetparallelfor-orig", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = true;
    e.label = "Y1";
    e.pattern = "target-teams-race";
    e.description =
        "target teams distribute parallel for with a shared accumulator.";
    e.body = R"(#include <stdio.h>
int main()
{
  int i;
  int van = 0;
  int a[64];

  for (i = 0; i < 64; i++)
    a[i] = i;
#pragma omp target teams distribute parallel for map(tofrom: van)
  for (i = 0; i < 64; i++)
    van = van + a[i];
  printf("%d\n", van);
  return 0;
}
)";
    e.pairs = {pair("van", 1, 'w', "van", 2, 'r')};
    b.add("targetteamssum-orig", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = true;
    e.label = "Y1";
    e.pattern = "forsimd-dep";
    e.description = "parallel for simd with a carried dependence.";
    e.body = R"(#include <stdio.h>
int main()
{
  int i;
  int a[128];

  for (i = 0; i < 128; i++)
    a[i] = i;
#pragma omp parallel for simd
  for (i = 0; i < 127; i++)
    a[i] = a[i+1] + 1;
  printf("a[1]=%d\n", a[1]);
  return 0;
}
)";
    e.pairs = {pair("a[i]", 1, 'w', "a[i+1]", 0, 'r')};
    b.add("parallelforsimddep-orig", std::move(e));
  }

  // ------------------------------------------------------------ race-free

  {
    CorpusEntry e;
    e.race = false;
    e.label = "N6";
    e.pattern = "simd-clean";
    e.description = "SIMD loop with independent lanes.";
    e.body = R"(#include <stdio.h>
int main()
{
  int i;
  int a[100];
  int c[100];

  for (i = 0; i < 100; i++)
    a[i] = i;
#pragma omp simd
  for (i = 0; i < 100; i++)
    c[i] = a[i] * 2;
  printf("c[7]=%d\n", c[7]);
  return 0;
}
)";
    b.add("simdclean-orig", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = false;
    e.label = "N6";
    e.pattern = "simd-safelen-ok";
    e.description = "Dependence distance 16 respects safelen(8).";
    e.body = R"(#include <stdio.h>
int main()
{
  int i;
  int a[120];

  for (i = 0; i < 120; i++)
    a[i] = i;
#pragma omp simd safelen(8)
  for (i = 0; i < 100; i++)
    a[i+16] = a[i] + 1;
  printf("a[20]=%d\n", a[20]);
  return 0;
}
)";
    b.add("simdsafelenok-orig", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = false;
    e.label = "N6";
    e.pattern = "target-clean";
    e.description = "target parallel for over independent elements.";
    e.body = R"(#include <stdio.h>
int main()
{
  int i;
  int len = 100;
  int a[100];

#pragma omp target map(tofrom: a) device(0)
#pragma omp parallel for
  for (i = 0; i < len; i++)
    a[i] = i * 2;
  printf("a[0]=%d\n", a[0]);
  return 0;
}
)";
    b.add("targetclean-orig", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = false;
    e.label = "N6";
    e.pattern = "target-teams-reduction";
    e.description = "target teams reduction over a mapped array.";
    e.body = R"(#include <stdio.h>
int main()
{
  int i;
  int total = 0;
  int a[64];

  for (i = 0; i < 64; i++)
    a[i] = i;
#pragma omp target teams distribute parallel for reduction(+:total)
  for (i = 0; i < 64; i++)
    total = total + a[i];
  printf("%d\n", total);
  return 0;
}
)";
    b.add("targetteamsreduction-orig", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = false;
    e.label = "N6";
    e.pattern = "forsimd-clean";
    e.description = "parallel for simd with disjoint writes.";
    e.body = R"(#include <stdio.h>
int main()
{
  int i;
  double x[128];
  double y[128];

  for (i = 0; i < 128; i++)
    x[i] = 0.25 * i;
#pragma omp parallel for simd
  for (i = 0; i < 128; i++)
    y[i] = 2.0 * x[i] + 1.0;
  printf("%f\n", y[3]);
  return 0;
}
)";
    b.add("parallelforsimdclean-orig", std::move(e));
  }
}

}  // namespace drbml::drb
