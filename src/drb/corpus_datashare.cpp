// Corpus entries: data-sharing pattern family (missing/present private,
// firstprivate, lastprivate, reduction, threadprivate, shared induction
// variables).
#include "drb/corpus.hpp"

namespace drbml::drb {

namespace {

PairSpec pair(const char* w_expr, int w_occ, char w_op, const char* r_expr,
              int r_occ, char r_op) {
  PairSpec p;
  p.var0 = VarSpec{w_expr, w_occ, w_op};
  p.var1 = VarSpec{r_expr, r_occ, r_op};
  return p;
}

}  // namespace

void register_datashare_entries(CorpusBuilder& b) {
  {
    CorpusEntry e;
    e.race = true;
    e.label = "Y2";
    e.pattern = "missing-private";
    e.description = "Temporary scalar shared across iterations.";
    e.body = R"(#include <stdio.h>
int main()
{
  int i;
  int tmp = 0;
  int a[100];

  for (i = 0; i < 100; i++)
    a[i] = i;
#pragma omp parallel for
  for (i = 0; i < 100; i++) {
    tmp = a[i] + 1;
    a[i] = tmp * 2;
  }
  printf("a[10]=%d\n", a[10]);
  return 0;
}
)";
    e.pairs = {pair("tmp", 1, 'w', "tmp", 2, 'r')};
    b.add("tmpshared-orig", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = true;
    e.label = "Y2";
    e.pattern = "shared-induction";
    e.description =
        "Inner sequential loop uses an induction variable that is shared.";
    e.body = R"(#include <stdio.h>
int main()
{
  int i;
  int j;
  double a[20][20];

#pragma omp parallel for
  for (i = 0; i < 20; i++)
    for (j = 0; j < 20; j++)
      a[i][j] = 1.0;
  printf("%f\n", a[5][5]);
  return 0;
}
)";
    e.pairs = {pair("j", 1, 'w', "j", 2, 'r')};
    b.add("innersharedj-orig", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = true;
    e.label = "Y2";
    e.pattern = "missing-reduction";
    e.description = "Sum accumulated without a reduction clause.";
    e.body = R"(#include <stdio.h>
int main()
{
  int i;
  double total = 0.0;
  double v[100];

  for (i = 0; i < 100; i++)
    v[i] = 0.5 * i;
#pragma omp parallel for
  for (i = 0; i < 100; i++)
    total = total + v[i];
  printf("%f\n", total);
  return 0;
}
)";
    e.pairs = {pair("total", 1, 'w', "total", 2, 'r')};
    b.add("sumnoreduction-orig", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = true;
    e.label = "Y2";
    e.pattern = "missing-reduction";
    e.description = "Maximum search without a reduction clause.";
    e.body = R"(#include <stdio.h>
int main()
{
  int i;
  int best = -1;
  int v[128];

  for (i = 0; i < 128; i++)
    v[i] = (i * 37) % 128;
#pragma omp parallel for
  for (i = 0; i < 128; i++) {
    if (v[i] > best)
      best = v[i];
  }
  printf("best=%d\n", best);
  return 0;
}
)";
    e.pairs = {pair("best", 2, 'w', "best", 1, 'r')};
    b.add("maxnoreduction-orig", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = true;
    e.label = "Y2";
    e.pattern = "firstprivate-missing";
    e.description =
        "A seed scalar is rewritten by each iteration before use.";
    e.body = R"(#include <stdio.h>
int main()
{
  int i;
  int seed = 3;
  int out[64];

#pragma omp parallel for
  for (i = 0; i < 64; i++) {
    seed = i;
    out[i] = seed * 2;
  }
  printf("out[1]=%d\n", out[1]);
  return 0;
}
)";
    e.pairs = {pair("seed", 1, 'w', "seed", 2, 'r')};
    b.add("seedshared-orig", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = true;
    e.label = "Y2";
    e.pattern = "private-leak";
    e.description =
        "Pointer stored from one iteration dereferenced by another.";
    e.body = R"(#include <stdio.h>
int main()
{
  int i;
  int current = 0;
  int sink[64];

#pragma omp parallel for
  for (i = 0; i < 64; i++) {
    current = i * i;
    sink[i] = current + 1;
  }
  printf("sink[5]=%d\n", sink[5]);
  return 0;
}
)";
    e.pairs = {pair("current", 1, 'w', "current", 2, 'r')};
    b.add("scalarleak-orig", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = true;
    e.label = "Y2";
    e.pattern = "threadprivate-missing";
    e.description = "Global accumulator updated by all threads unprotected.";
    e.body = R"(#include <stdio.h>
int gsum = 0;
int main()
{
  int i;

#pragma omp parallel for
  for (i = 0; i < 100; i++)
    gsum = gsum + i;
  printf("gsum=%d\n", gsum);
  return 0;
}
)";
    e.pairs = {pair("gsum", 1, 'w', "gsum", 2, 'r')};
    b.add("globalsum-orig", std::move(e));
  }

  // ------------------------------------------------------------ race-free

  {
    CorpusEntry e;
    e.race = false;
    e.label = "N2";
    e.pattern = "private";
    e.description = "Temporary scalar correctly privatized.";
    e.body = R"(#include <stdio.h>
int main()
{
  int i;
  int tmp = 0;
  int a[100];

  for (i = 0; i < 100; i++)
    a[i] = i;
#pragma omp parallel for private(tmp)
  for (i = 0; i < 100; i++) {
    tmp = a[i] + 1;
    a[i] = tmp * 2;
  }
  printf("a[10]=%d\n", a[10]);
  return 0;
}
)";
    b.add("tmpprivate-orig", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = false;
    e.label = "N2";
    e.pattern = "private";
    e.description = "Inner induction variable declared inside the loop.";
    e.body = R"(#include <stdio.h>
int main()
{
  int i;
  double a[20][20];

#pragma omp parallel for
  for (i = 0; i < 20; i++)
    for (int j = 0; j < 20; j++)
      a[i][j] = 1.0;
  printf("%f\n", a[5][5]);
  return 0;
}
)";
    b.add("innerdeclared-orig", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = false;
    e.label = "N2";
    e.pattern = "private-clause";
    e.description = "Inner induction variable listed in private().";
    e.body = R"(#include <stdio.h>
int main()
{
  int i;
  int j;
  double a[20][20];

#pragma omp parallel for private(j)
  for (i = 0; i < 20; i++)
    for (j = 0; j < 20; j++)
      a[i][j] = 1.0;
  printf("%f\n", a[5][5]);
  return 0;
}
)";
    b.add("innerprivatej-orig", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = false;
    e.label = "N2";
    e.pattern = "reduction";
    e.description = "Sum accumulated with a reduction clause.";
    e.body = R"(#include <stdio.h>
int main()
{
  int i;
  double total = 0.0;
  double v[100];

  for (i = 0; i < 100; i++)
    v[i] = 0.5 * i;
#pragma omp parallel for reduction(+:total)
  for (i = 0; i < 100; i++)
    total = total + v[i];
  printf("%f\n", total);
  return 0;
}
)";
    b.add("sumreduction-orig", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = false;
    e.label = "N2";
    e.pattern = "reduction-max";
    e.description = "Maximum search with reduction(max:).";
    e.body = R"(#include <stdio.h>
int main()
{
  int i;
  int best = -1;
  int v[128];

  for (i = 0; i < 128; i++)
    v[i] = (i * 37) % 128;
#pragma omp parallel for reduction(max:best)
  for (i = 0; i < 128; i++) {
    if (v[i] > best)
      best = v[i];
  }
  printf("best=%d\n", best);
  return 0;
}
)";
    b.add("maxreduction-orig", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = false;
    e.label = "N2";
    e.pattern = "firstprivate";
    e.description = "Read-only seed captured firstprivate.";
    e.body = R"(#include <stdio.h>
int main()
{
  int i;
  int seed = 3;
  int out[64];

#pragma omp parallel for firstprivate(seed)
  for (i = 0; i < 64; i++)
    out[i] = seed + i;
  printf("out[1]=%d\n", out[1]);
  return 0;
}
)";
    b.add("seedfirstprivate-orig", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = false;
    e.label = "N2";
    e.pattern = "lastprivate";
    e.description = "Final iteration value published via lastprivate.";
    e.body = R"(#include <stdio.h>
int main()
{
  int i;
  int x0 = -1;
  double d[100];

  for (i = 0; i < 100; i++)
    d[i] = 0.5 * i;
#pragma omp parallel for lastprivate(x0)
  for (i = 0; i < 100; i++)
    x0 = (int)d[i];
  printf("x0=%d\n", x0);
  return 0;
}
)";
    b.add("lastprivatepub-orig", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = false;
    e.label = "N2";
    e.pattern = "threadprivate";
    e.description = "Per-thread global declared threadprivate.";
    e.body = R"(#include <stdio.h>
int counter = 0;
#pragma omp threadprivate(counter)
int main()
{
  int i;

#pragma omp parallel for
  for (i = 0; i < 64; i++)
    counter = counter + 1;
  printf("done\n");
  return 0;
}
)";
    b.add("threadprivatecounter-orig", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = false;
    e.label = "N2";
    e.pattern = "private-region";
    e.description = "Region-level private clause on a parallel construct.";
    e.body = R"(#include <stdio.h>
int main()
{
  int scratch = 0;
  int out[16];

#pragma omp parallel private(scratch) num_threads(4)
  {
    scratch = omp_get_thread_num() * 10;
    out[omp_get_thread_num()] = scratch;
  }
  printf("out[0]=%d\n", out[0]);
  return 0;
}
)";
    b.add("regionprivate-orig", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = false;
    e.label = "N2";
    e.pattern = "declared-in-region";
    e.description = "Scratch variables declared inside the region body.";
    e.body = R"(#include <stdio.h>
int main()
{
  int i;
  double norm[100];
  double v[100];

  for (i = 0; i < 100; i++)
    v[i] = 1.0 * i;
#pragma omp parallel for
  for (i = 0; i < 100; i++) {
    double sq = v[i] * v[i];
    norm[i] = sq + 1.0;
  }
  printf("%f\n", norm[2]);
  return 0;
}
)";
    b.add("blocklocal-orig", std::move(e));
  }
}

}  // namespace drbml::drb
