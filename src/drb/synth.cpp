#include "drb/synth.hpp"

#include <cstdio>

#include "support/rng.hpp"

namespace drbml::drb {

namespace {

/// Identifier pools so generated programs vary lexically.
const char* kArrayNames[] = {"a", "buf", "vec", "dataa", "cells", "wk"};
const char* kScalarNames[] = {"acc", "total", "tally", "agg", "summ"};
const char* kIndexNames[] = {"i", "k", "idx0", "it"};

struct TemplateResult {
  std::string body;
  bool race = false;
  const char* pattern = "";
};

std::string header() { return "#include <stdio.h>\n"; }

TemplateResult gen_doall(Rng& rng) {
  TemplateResult t;
  t.pattern = "synth-doall";
  t.race = false;
  const int n = static_cast<int>(rng.between(16, 200));
  const char* arr = kArrayNames[rng.below(std::size(kArrayNames))];
  const char* idx = kIndexNames[rng.below(std::size(kIndexNames))];
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "int main()\n{\n"
                "  int %s;\n"
                "  int %s[%d];\n"
                "#pragma omp parallel for\n"
                "  for (%s = 0; %s < %d; %s++)\n"
                "    %s[%s] = %s * %d;\n"
                "  printf(\"%%d\\n\", %s[0]);\n"
                "  return 0;\n}\n",
                idx, arr, n, idx, idx, n, idx, arr, idx, idx,
                static_cast<int>(rng.between(1, 9)), arr);
  t.body = header() + buf;
  return t;
}

TemplateResult gen_shift(Rng& rng, bool racy) {
  TemplateResult t;
  t.pattern = racy ? "synth-shiftdep" : "synth-shiftsafe";
  t.race = racy;
  const int n = static_cast<int>(rng.between(24, 160));
  const int shift = static_cast<int>(rng.between(1, 8));
  const char* arr = kArrayNames[rng.below(std::size(kArrayNames))];
  const char* idx = kIndexNames[rng.below(std::size(kIndexNames))];
  char buf[640];
  if (racy) {
    // In-place shifted update: loop-carried dependence of distance `shift`.
    std::snprintf(buf, sizeof(buf),
                  "int main()\n{\n"
                  "  int %s;\n"
                  "  int %s[%d];\n"
                  "  for (%s = 0; %s < %d; %s++)\n"
                  "    %s[%s] = %s;\n"
                  "#pragma omp parallel for\n"
                  "  for (%s = 0; %s < %d; %s++)\n"
                  "    %s[%s] = %s[%s+%d] + 1;\n"
                  "  printf(\"%%d\\n\", %s[0]);\n"
                  "  return 0;\n}\n",
                  idx, arr, n + shift, idx, idx, n + shift, idx, arr, idx,
                  idx, idx, idx, n, idx, arr, idx, arr, idx, shift, arr);
  } else {
    // Shifted reads land in a second buffer: no carried dependence.
    std::snprintf(buf, sizeof(buf),
                  "int main()\n{\n"
                  "  int %s;\n"
                  "  int %s[%d];\n"
                  "  int outt[%d];\n"
                  "  for (%s = 0; %s < %d; %s++)\n"
                  "    %s[%s] = %s;\n"
                  "#pragma omp parallel for\n"
                  "  for (%s = 0; %s < %d; %s++)\n"
                  "    outt[%s] = %s[%s+%d] + 1;\n"
                  "  printf(\"%%d\\n\", outt[0]);\n"
                  "  return 0;\n}\n",
                  idx, arr, n + shift, n, idx, idx, n + shift, idx, arr, idx,
                  idx, idx, idx, n, idx, idx, arr, idx, shift);
  }
  t.body = header() + buf;
  return t;
}

TemplateResult gen_accumulator(Rng& rng, bool racy) {
  TemplateResult t;
  t.pattern = racy ? "synth-sharedsum" : "synth-reduction";
  t.race = racy;
  const int n = static_cast<int>(rng.between(32, 180));
  const char* acc = kScalarNames[rng.below(std::size(kScalarNames))];
  const char* arr = kArrayNames[rng.below(std::size(kArrayNames))];
  const char* idx = kIndexNames[rng.below(std::size(kIndexNames))];
  char buf[640];
  std::snprintf(buf, sizeof(buf),
                "int main()\n{\n"
                "  int %s;\n"
                "  int %s = 0;\n"
                "  int %s[%d];\n"
                "  for (%s = 0; %s < %d; %s++)\n"
                "    %s[%s] = %s %% 13;\n"
                "#pragma omp parallel for%s\n"
                "  for (%s = 0; %s < %d; %s++)\n"
                "    %s = %s + %s[%s];\n"
                "  printf(\"%%d\\n\", %s);\n"
                "  return 0;\n}\n",
                idx, acc, arr, n, idx, idx, n, idx, arr, idx, idx,
                racy ? "" : (std::string(" reduction(+:") + acc + ")").c_str(),
                idx, idx, n, idx, acc, acc, arr, idx, acc);
  t.body = header() + buf;
  return t;
}

TemplateResult gen_counter(Rng& rng, bool racy) {
  TemplateResult t;
  t.pattern = racy ? "synth-counter" : "synth-counter-sync";
  t.race = racy;
  const int n = static_cast<int>(rng.between(24, 128));
  const char* acc = kScalarNames[rng.below(std::size(kScalarNames))];
  const char* idx = kIndexNames[rng.below(std::size(kIndexNames))];
  const bool use_atomic = rng.chance(0.5);
  std::string guard_open;
  std::string guard_close;
  if (!racy) {
    if (use_atomic) {
      guard_open = "#pragma omp atomic\n    ";
    } else {
      guard_open = "#pragma omp critical\n    { ";
      guard_close = " }";
    }
  }
  char buf[640];
  std::snprintf(buf, sizeof(buf),
                "int main()\n{\n"
                "  int %s;\n"
                "  int %s = 0;\n"
                "#pragma omp parallel for\n"
                "  for (%s = 0; %s < %d; %s++) {\n"
                "    %s%s += 1;%s\n"
                "  }\n"
                "  printf(\"%%d\\n\", %s);\n"
                "  return 0;\n}\n",
                idx, acc, idx, idx, n, idx, guard_open.c_str(), acc,
                guard_close.c_str(), acc);
  t.body = header() + buf;
  return t;
}

TemplateResult gen_stride(Rng& rng, bool racy) {
  TemplateResult t;
  t.pattern = racy ? "synth-strideclash" : "synth-stridesafe";
  t.race = racy;
  const int n = static_cast<int>(rng.between(16, 80));
  const char* arr = kArrayNames[rng.below(std::size(kArrayNames))];
  const char* idx = kIndexNames[rng.below(std::size(kIndexNames))];
  char buf[640];
  if (racy) {
    // Writes at 2i collide with reads at 2i+2.
    std::snprintf(buf, sizeof(buf),
                  "int main()\n{\n"
                  "  int %s;\n"
                  "  int %s[%d];\n"
                  "  for (%s = 0; %s < %d; %s++)\n"
                  "    %s[%s] = %s;\n"
                  "#pragma omp parallel for\n"
                  "  for (%s = 0; %s < %d; %s++)\n"
                  "    %s[2*%s] = %s[2*%s+2] + 1;\n"
                  "  printf(\"%%d\\n\", %s[0]);\n"
                  "  return 0;\n}\n",
                  idx, arr, 2 * n + 4, idx, idx, 2 * n + 4, idx, arr, idx,
                  idx, idx, idx, n, idx, arr, idx, arr, idx, arr);
  } else {
    // Even writes, odd writes: disjoint.
    std::snprintf(buf, sizeof(buf),
                  "int main()\n{\n"
                  "  int %s;\n"
                  "  int %s[%d];\n"
                  "#pragma omp parallel for\n"
                  "  for (%s = 0; %s < %d; %s++) {\n"
                  "    %s[2*%s] = %s;\n"
                  "    %s[2*%s+1] = -%s;\n"
                  "  }\n"
                  "  printf(\"%%d\\n\", %s[1]);\n"
                  "  return 0;\n}\n",
                  idx, arr, 2 * n + 2, idx, idx, n, idx, arr, idx, idx, arr,
                  idx, idx, arr);
  }
  t.body = header() + buf;
  return t;
}

TemplateResult gen_privatization(Rng& rng, bool racy) {
  TemplateResult t;
  t.pattern = racy ? "synth-tmpshared" : "synth-tmpprivate";
  t.race = racy;
  const int n = static_cast<int>(rng.between(32, 150));
  const char* arr = kArrayNames[rng.below(std::size(kArrayNames))];
  const char* idx = kIndexNames[rng.below(std::size(kIndexNames))];
  char buf[640];
  std::snprintf(buf, sizeof(buf),
                "int main()\n{\n"
                "  int %s;\n"
                "  int scratch = 0;\n"
                "  int %s[%d];\n"
                "  for (%s = 0; %s < %d; %s++)\n"
                "    %s[%s] = %s;\n"
                "#pragma omp parallel for%s\n"
                "  for (%s = 0; %s < %d; %s++) {\n"
                "    scratch = %s[%s] + 1;\n"
                "    %s[%s] = scratch * 2;\n"
                "  }\n"
                "  printf(\"%%d\\n\", %s[1]);\n"
                "  return 0;\n}\n",
                idx, arr, n, idx, idx, n, idx, arr, idx, idx,
                racy ? "" : " private(scratch)", idx, idx, n, idx, arr, idx,
                arr, idx, arr);
  t.body = header() + buf;
  return t;
}

}  // namespace

std::vector<SynthEntry> synthesize(const SynthConfig& config) {
  std::vector<SynthEntry> out;
  out.reserve(static_cast<std::size_t>(config.count));
  Rng rng(config.seed);
  for (int i = 0; i < config.count; ++i) {
    const bool want_race = rng.chance(config.race_fraction);
    TemplateResult t;
    switch (rng.below(6)) {
      case 0:
        t = want_race ? gen_shift(rng, true) : gen_doall(rng);
        break;
      case 1: t = gen_shift(rng, want_race); break;
      case 2: t = gen_accumulator(rng, want_race); break;
      case 3: t = gen_counter(rng, want_race); break;
      case 4: t = gen_stride(rng, want_race); break;
      default: t = gen_privatization(rng, want_race); break;
    }
    SynthEntry e;
    char name[64];
    std::snprintf(name, sizeof(name), "SYNTH%03d-%s-%s.c", i + 1,
                  t.pattern + 6,  // drop the "synth-" prefix
                  t.race ? "yes" : "no");
    e.name = name;
    e.code = std::move(t.body);
    e.race = t.race;
    e.pattern = t.pattern;
    out.push_back(std::move(e));
  }
  return out;
}

}  // namespace drbml::drb
