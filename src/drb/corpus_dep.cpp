// Corpus entries: data-dependence pattern family (anti/true/output
// dependences, strides, collapse, multi-dimensional kernels, and their
// race-free counterparts).
#include "drb/corpus.hpp"

namespace drbml::drb {

namespace {

PairSpec pair(const char* w_expr, int w_occ, char w_op, const char* r_expr,
              int r_occ, char r_op) {
  PairSpec p;
  p.var0 = VarSpec{w_expr, w_occ, w_op};
  p.var1 = VarSpec{r_expr, r_occ, r_op};
  return p;
}

}  // namespace

void register_dep_entries(CorpusBuilder& b) {
  {
    CorpusEntry e;
    e.race = true;
    e.label = "Y1";
    e.pattern = "antidep";
    e.category = Category::Manual;
    e.description = "A loop with loop-carried anti-dependence.";
    e.body = R"(#include <stdio.h>
int main(int argc, char* argv[])
{
  int i;
  int len = 100;
  int a[100];

  for (i = 0; i < len; i++)
    a[i] = i;
#pragma omp parallel for
  for (i = 0; i < len - 1; i++)
    a[i] = a[i+1] + 1;
  printf("a[50]=%d\n", a[50]);
  return 0;
}
)";
    e.pairs = {pair("a[i]", 1, 'w', "a[i+1]", 0, 'r')};
    b.add("antidep1-orig", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = true;
    e.label = "Y1";
    e.pattern = "antidep";
    e.description =
        "Two-dimensional loop nest with an anti-dependence across rows.";
    e.body = R"(#include <stdio.h>
int main()
{
  int i;
  int j;
  double a[20][20];

  for (i = 0; i < 20; i++)
    for (j = 0; j < 20; j++)
      a[i][j] = 1.0;
#pragma omp parallel for private(j)
  for (i = 0; i < 19; i++)
    for (j = 0; j < 20; j++)
      a[i][j] = a[i+1][j] + 1.0;
  printf("%f\n", a[0][0]);
  return 0;
}
)";
    e.pairs = {pair("a[i][j]", 1, 'w', "a[i+1][j]", 0, 'r')};
    b.add("antidep2-orig", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = true;
    e.label = "Y1";
    e.pattern = "truedep";
    e.description = "A loop with loop-carried true dependence.";
    e.body = R"(#include <stdio.h>
int main()
{
  int i;
  int len = 100;
  int a[100];

  for (i = 0; i < len; i++)
    a[i] = i;
#pragma omp parallel for
  for (i = 0; i < len - 1; i++)
    a[i+1] = a[i] + 1;
  printf("a[99]=%d\n", a[99]);
  return 0;
}
)";
    e.pairs = {pair("a[i+1]", 0, 'w', "a[i]", 1, 'r')};
    b.add("truedep1-orig", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = true;
    e.label = "Y1";
    e.pattern = "truedep";
    e.description =
        "True dependence between a[2*i] writes and a[i] reads for even i.";
    e.body = R"(#include <stdio.h>
int main()
{
  int i;
  int len = 50;
  int a[100];

  for (i = 0; i < 100; i++)
    a[i] = i;
#pragma omp parallel for
  for (i = 0; i < len; i++)
    a[2*i] = a[i] + 1;
  printf("a[8]=%d\n", a[8]);
  return 0;
}
)";
    e.pairs = {pair("a[2*i]", 0, 'w', "a[i]", 1, 'r')};
    b.add("lineardep-orig", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = true;
    e.label = "Y1";
    e.pattern = "outputdep";
    e.description =
        "Output dependence: x is written by every iteration and read back.";
    e.body = R"(#include <stdio.h>
int main()
{
  int i;
  int len = 100;
  int x = 10;
  int a[100];

#pragma omp parallel for
  for (i = 0; i < len; i++) {
    a[i] = x;
    x = i;
  }
  printf("x=%d\n", x);
  return 0;
}
)";
    e.pairs = {pair("x", 2, 'w', "x", 1, 'r')};
    b.add("outputdep1-orig", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = true;
    e.label = "Y1";
    e.pattern = "stride";
    e.description =
        "Strided accesses overlap: a[2*i] written, a[2*i+2] read.";
    e.body = R"(#include <stdio.h>
int main()
{
  int i;
  int a[130];

  for (i = 0; i < 130; i++)
    a[i] = i;
#pragma omp parallel for
  for (i = 0; i < 64; i++)
    a[2*i] = a[2*i+2] + 1;
  printf("a[4]=%d\n", a[4]);
  return 0;
}
)";
    e.pairs = {pair("a[2*i]", 0, 'w', "a[2*i+2]", 0, 'r')};
    b.add("strideoverlap-orig", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = true;
    e.label = "Y1";
    e.pattern = "collapse";
    e.description =
        "collapse(2) distributes the inner loop, exposing its dependence.";
    e.body = R"(#include <stdio.h>
int main()
{
  int i;
  int j;
  double m[16][16];

  for (i = 0; i < 16; i++)
    for (j = 0; j < 16; j++)
      m[i][j] = 0.5;
#pragma omp parallel for collapse(2)
  for (i = 0; i < 16; i++)
    for (j = 0; j < 15; j++)
      m[i][j] = m[i][j+1] * 0.5;
  printf("%f\n", m[3][3]);
  return 0;
}
)";
    e.pairs = {pair("m[i][j]", 1, 'w', "m[i][j+1]", 0, 'r')};
    b.add("collapsedep-orig", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = true;
    e.label = "Y1";
    e.pattern = "truedep";
    e.description = "Long-distance dependence still inside the bounds.";
    e.body = R"(#include <stdio.h>
int main()
{
  int i;
  int a[110];

  for (i = 0; i < 110; i++)
    a[i] = i;
#pragma omp parallel for
  for (i = 0; i < 100; i++)
    a[i] = a[i+10] + 1;
  printf("a[0]=%d\n", a[0]);
  return 0;
}
)";
    e.pairs = {pair("a[i]", 1, 'w', "a[i+10]", 0, 'r')};
    b.add("longdistdep-orig", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = true;
    e.label = "Y1";
    e.pattern = "nonunit-stride";
    e.description =
        "Non-unit-stride loop carries a dependence of distance one step.";
    e.body = R"(#include <stdio.h>
int main()
{
  int i;
  int a[104];

  for (i = 0; i < 104; i++)
    a[i] = i;
#pragma omp parallel for
  for (i = 0; i < 100; i += 2)
    a[i] = a[i+2] + 1;
  printf("a[2]=%d\n", a[2]);
  return 0;
}
)";
    e.pairs = {pair("a[i]", 1, 'w', "a[i+2]", 0, 'r')};
    b.add("stridecarried-orig", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = true;
    e.label = "Y2";
    e.pattern = "stencil";
    e.description =
        "1-D Jacobi-style stencil updated in place races on neighbours.";
    e.body = R"(#include <stdio.h>
int main()
{
  int i;
  int n = 64;
  double u[64];

  for (i = 0; i < n; i++)
    u[i] = 1.0 * i;
#pragma omp parallel for
  for (i = 1; i < n - 1; i++)
    u[i] = 0.5 * (u[i-1] + u[i+1]);
  printf("%f\n", u[10]);
  return 0;
}
)";
    e.pairs = {pair("u[i]", 1, 'w', "u[i-1]", 0, 'r'),
               pair("u[i]", 1, 'w', "u[i+1]", 0, 'r')};
    b.add("jacobiinplace-orig", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = true;
    e.label = "Y1";
    e.pattern = "multidim";
    e.description = "Column-shift write races across distributed rows.";
    e.body = R"(#include <stdio.h>
int main()
{
  int i;
  int j;
  double g[12][12];

  for (i = 0; i < 12; i++)
    for (j = 0; j < 12; j++)
      g[i][j] = i + j;
#pragma omp parallel for private(j)
  for (i = 1; i < 12; i++)
    for (j = 0; j < 12; j++)
      g[i-1][j] = g[i][j] + 1.0;
  printf("%f\n", g[0][0]);
  return 0;
}
)";
    e.pairs = {pair("g[i-1][j]", 0, 'w', "g[i][j]", 1, 'r')};
    b.add("rowshift-orig", std::move(e));
  }

  // ------------------------------------------------------------ race-free

  {
    CorpusEntry e;
    e.race = false;
    e.label = "N1";
    e.pattern = "doall";
    e.description = "Embarrassingly parallel elementwise update.";
    e.body = R"(#include <stdio.h>
int main(int argc, char* argv[])
{
  int i;
  int len = 100;
  int a[100];

#pragma omp parallel for
  for (i = 0; i < len; i++)
    a[i] = i * 2;
  printf("a[50]=%d\n", a[50]);
  return 0;
}
)";
    b.add("doall1-orig", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = false;
    e.label = "N1";
    e.pattern = "doall";
    e.description = "Two-dimensional doall with collapse(2).";
    e.body = R"(#include <stdio.h>
int main()
{
  int i;
  int j;
  double a[20][20];

#pragma omp parallel for collapse(2)
  for (i = 0; i < 20; i++)
    for (j = 0; j < 20; j++)
      a[i][j] = 1.0 * i * j;
  printf("%f\n", a[3][4]);
  return 0;
}
)";
    b.add("doall2-orig", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = false;
    e.label = "N3";
    e.pattern = "distance-out-of-range";
    e.description =
        "Offset accesses never overlap: reads start beyond the write range.";
    e.body = R"(#include <stdio.h>
int main()
{
  int i;
  int a[192];

  for (i = 0; i < 192; i++)
    a[i] = i;
#pragma omp parallel for
  for (i = 0; i < 64; i++)
    a[i] = a[i+128] + 1;
  printf("a[0]=%d\n", a[0]);
  return 0;
}
)";
    b.add("offsetdisjoint-orig", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = false;
    e.label = "N1";
    e.pattern = "stride-disjoint";
    e.description = "Even and odd elements written by disjoint expressions.";
    e.body = R"(#include <stdio.h>
int main()
{
  int i;
  int a[200];

#pragma omp parallel for
  for (i = 0; i < 100; i++) {
    a[2*i] = i;
    a[2*i+1] = i;
  }
  printf("a[9]=%d\n", a[9]);
  return 0;
}
)";
    b.add("stridedisjoint-orig", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = false;
    e.label = "N1";
    e.pattern = "stencil-double-buffer";
    e.description = "Stencil with separate input and output buffers.";
    e.body = R"(#include <stdio.h>
int main()
{
  int i;
  int n = 64;
  double u[64];
  double v[64];

  for (i = 0; i < n; i++)
    u[i] = 1.0 * i;
#pragma omp parallel for
  for (i = 1; i < n - 1; i++)
    v[i] = 0.5 * (u[i-1] + u[i+1]);
  printf("%f\n", v[10]);
  return 0;
}
)";
    b.add("jacobibuffered-orig", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = false;
    e.label = "N1";
    e.pattern = "reverse-loop";
    e.description = "Descending loop with independent iterations.";
    e.body = R"(#include <stdio.h>
int main()
{
  int i;
  int a[100];

#pragma omp parallel for
  for (i = 99; i >= 0; i--)
    a[i] = i * i;
  printf("a[99]=%d\n", a[99]);
  return 0;
}
)";
    b.add("reverseloop-orig", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = false;
    e.label = "N1";
    e.pattern = "gather";
    e.description = "Gather reads shared input; each output element private.";
    e.body = R"(#include <stdio.h>
int main()
{
  int i;
  int n = 100;
  double a[101];
  double bb[100];

  for (i = 0; i <= n; i++)
    a[i] = 1.0 * i;
#pragma omp parallel for
  for (i = 0; i < n; i++)
    bb[i] = a[i] + a[i+1];
  printf("%f\n", bb[5]);
  return 0;
}
)";
    b.add("gatherreads-orig", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = false;
    e.label = "N3";
    e.pattern = "phase-split";
    e.description =
        "Dependent phases run in separate parallel regions (implicit join).";
    e.body = R"(#include <stdio.h>
int main()
{
  int i;
  int a[100];
  int c[100];

#pragma omp parallel for
  for (i = 0; i < 100; i++)
    a[i] = i;
#pragma omp parallel for
  for (i = 0; i < 99; i++)
    c[i] = a[i+1];
  printf("%d\n", c[42]);
  return 0;
}
)";
    b.add("phasesplit-orig", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = false;
    e.label = "N1";
    e.pattern = "nonunit-stride";
    e.description = "Non-unit stride without any carried dependence.";
    e.body = R"(#include <stdio.h>
int main()
{
  int i;
  int a[100];

#pragma omp parallel for
  for (i = 0; i < 100; i += 4)
    a[i] = i;
  printf("a[96]=%d\n", a[96]);
  return 0;
}
)";
    b.add("stridesafe-orig", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = false;
    e.label = "N1";
    e.pattern = "triangular";
    e.description =
        "Triangular nest writes row i only; inner loop is thread-local.";
    e.body = R"(#include <stdio.h>
int main()
{
  int i;
  int j;
  double t[24][24];

#pragma omp parallel for private(j)
  for (i = 0; i < 24; i++)
    for (j = 0; j <= i; j++)
      t[i][j] = 1.0 * (i - j);
  printf("%f\n", t[20][3]);
  return 0;
}
)";
    b.add("triangular-orig", std::move(e));
  }
}

}  // namespace drbml::drb
