// Corpus entries: miscellaneous family -- indirect indexing, pointer
// aliasing, interprocedural effects, sequential controls, and the three
// oversized programs that exceed the 4k-token model input limit (the
// paper's 201 -> 198 subset cut).
#include "drb/corpus.hpp"

#include <string>

namespace drbml::drb {

namespace {

PairSpec pair(const char* w_expr, int w_occ, char w_op, const char* r_expr,
              int r_occ, char r_op) {
  PairSpec p;
  p.var0 = VarSpec{w_expr, w_occ, w_op};
  p.var1 = VarSpec{r_expr, r_occ, r_op};
  return p;
}

/// Builds an oversized body: a long chain of distinct scalar statements
/// around a parallel loop. `racy` controls whether the loop carries a
/// dependence.
std::string make_long_body(bool racy, int stmt_count) {
  std::string body = "#include <stdio.h>\nint main()\n{\n  int i;\n";
  body += "  int acc0 = 0;\n";
  for (int k = 0; k < stmt_count; ++k) {
    body += "  int t" + std::to_string(k) + " = " + std::to_string(k * 3 + 1) +
            ";\n";
    body += "  acc0 = acc0 + t" + std::to_string(k) + " * " +
            std::to_string(k % 7 + 1) + ";\n";
  }
  body += "  int a[200];\n";
  body += "  for (i = 0; i < 200; i++)\n    a[i] = i + acc0;\n";
  body += "#pragma omp parallel for\n";
  if (racy) {
    body += "  for (i = 0; i < 199; i++)\n    a[i] = a[i+1] + 1;\n";
  } else {
    body += "  for (i = 0; i < 200; i++)\n    a[i] = a[i] + 1;\n";
  }
  body += "  printf(\"%d\\n\", a[0]);\n  return 0;\n}\n";
  return body;
}

}  // namespace

void register_misc_entries(CorpusBuilder& b) {
  {
    CorpusEntry e;
    e.race = true;
    e.label = "Y3";
    e.pattern = "indirect-collision";
    e.description =
        "Indirect index array maps many iterations onto the same element.";
    e.body = R"(#include <stdio.h>
int main()
{
  int i;
  int idx[64];
  int a[64];

  for (i = 0; i < 64; i++)
    idx[i] = (i * 2) % 8;
  for (i = 0; i < 64; i++)
    a[i] = 0;
#pragma omp parallel for
  for (i = 0; i < 64; i++)
    a[idx[i]] = a[idx[i]] + i;
  printf("a[0]=%d\n", a[0]);
  return 0;
}
)";
    e.pairs = {pair("a[idx[i]]", 0, 'w', "a[idx[i]]", 1, 'r')};
    b.add("indirectcollide-orig", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = true;
    e.label = "Y3";
    e.pattern = "pointer-alias";
    e.description = "Aliased pointer hides the dependence on the array.";
    e.body = R"(#include <stdio.h>
int main()
{
  int i;
  int a[100];
  int* p;

  for (i = 0; i < 100; i++)
    a[i] = i;
  p = a;
#pragma omp parallel for
  for (i = 0; i < 99; i++)
    p[i] = a[i+1] + 1;
  printf("a[0]=%d\n", a[0]);
  return 0;
}
)";
    e.pairs = {pair("p[i]", 0, 'w', "a[i+1]", 0, 'r')};
    b.add("aliasdep-orig", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = true;
    e.label = "Y3";
    e.pattern = "interproc";
    e.description =
        "Callee updates a shared accumulator with no synchronization.";
    e.body = R"(#include <stdio.h>
int bump(int* cell, int delta)
{
  cell[0] = cell[0] + delta;
  return cell[0];
}
int main()
{
  int i;
  int acc = 0;

#pragma omp parallel for
  for (i = 0; i < 64; i++)
    bump(&acc, i);
  printf("acc=%d\n", acc);
  return 0;
}
)";
    e.pairs = {pair("cell[0]", 0, 'w', "cell[0]", 1, 'r')};
    b.add("interprocacc-orig", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = true;
    e.label = "Y3";
    e.pattern = "heap";
    e.description = "Heap buffer carries a dependence across iterations.";
    e.body = R"(#include <stdio.h>
#include <stdlib.h>
int main()
{
  int i;
  int* h;

  h = (int*)malloc(100 * sizeof(int));
  for (i = 0; i < 100; i++)
    h[i] = i;
#pragma omp parallel for
  for (i = 0; i < 99; i++)
    h[i] = h[i+1] + 1;
  printf("h[0]=%d\n", h[0]);
  free(h);
  return 0;
}
)";
    e.pairs = {pair("h[i]", 1, 'w', "h[i+1]", 0, 'r')};
    b.add("heapdep-orig", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = true;
    e.label = "Y3";
    e.pattern = "conditional-write";
    e.description = "Guarded write still collides across iterations.";
    e.body = R"(#include <stdio.h>
int main()
{
  int i;
  int found = -1;
  int v[128];

  for (i = 0; i < 128; i++)
    v[i] = i % 9;
#pragma omp parallel for
  for (i = 0; i < 128; i++) {
    if (v[i] == 0)
      found = i;
  }
  printf("found=%d\n", found);
  return 0;
}
)";
    e.pairs = {pair("found", 1, 'w', "found", 1, 'w')};
    b.add("condfound-orig", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = true;
    e.label = "Y3";
    e.pattern = "minusminus";
    e.description = "Shared countdown decremented by every iteration.";
    e.body = R"(#include <stdio.h>
int main()
{
  int i;
  int remaining = 128;

#pragma omp parallel for
  for (i = 0; i < 128; i++)
    remaining--;
  printf("remaining=%d\n", remaining);
  return 0;
}
)";
    e.pairs = {pair("remaining", 1, 'w', "remaining", 1, 'r')};
    b.add("countdown-orig", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = true;
    e.label = "Y3";
    e.pattern = "oversized";
    e.category = Category::AutoGen;
    e.description =
        "Oversized unrolled program (exceeds the 4k-token input limit).";
    e.body = make_long_body(/*racy=*/true, 500);
    e.pairs = {pair("a[i]", 1, 'w', "a[i+1]", 0, 'r')};
    b.add("hugeunrolled1", std::move(e));
  }

  // ------------------------------------------------------------ race-free

  {
    CorpusEntry e;
    e.race = false;
    e.label = "N3";
    e.pattern = "indirect-permutation";
    e.description =
        "Indirect index array is a permutation: writes never collide.";
    e.body = R"(#include <stdio.h>
int main()
{
  int i;
  int idx[64];
  int a[64];

  for (i = 0; i < 64; i++)
    idx[i] = (i * 5) % 64;
  for (i = 0; i < 64; i++)
    a[i] = 0;
#pragma omp parallel for
  for (i = 0; i < 64; i++)
    a[idx[i]] = i;
  printf("a[0]=%d\n", a[0]);
  return 0;
}
)";
    b.add("indirectperm-orig", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = false;
    e.label = "N3";
    e.pattern = "pointer-alias-clean";
    e.description = "Aliased pointer used for disjoint element writes.";
    e.body = R"(#include <stdio.h>
int main()
{
  int i;
  int a[100];
  int* p;

  p = a;
#pragma omp parallel for
  for (i = 0; i < 100; i++)
    p[i] = i;
  printf("a[0]=%d\n", a[0]);
  return 0;
}
)";
    b.add("aliasclean-orig", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = false;
    e.label = "N3";
    e.pattern = "interproc-clean";
    e.description = "Callee writes only the element it is handed.";
    e.body = R"(#include <stdio.h>
void set_cell(int* cell, int value)
{
  cell[0] = value;
}
int main()
{
  int i;
  int a[64];

#pragma omp parallel for
  for (i = 0; i < 64; i++)
    set_cell(&a[i], i);
  printf("a[5]=%d\n", a[5]);
  return 0;
}
)";
    b.add("interproccell-orig", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = false;
    e.label = "N3";
    e.pattern = "heap-clean";
    e.description = "Heap buffer updated elementwise.";
    e.body = R"(#include <stdio.h>
#include <stdlib.h>
int main()
{
  int i;
  int* h;

  h = (int*)malloc(100 * sizeof(int));
#pragma omp parallel for
  for (i = 0; i < 100; i++)
    h[i] = i * 3;
  printf("h[4]=%d\n", h[4]);
  free(h);
  return 0;
}
)";
    b.add("heapclean-orig", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = false;
    e.label = "N7";
    e.pattern = "noomp";
    e.description = "Sequential program: no OpenMP constructs at all.";
    e.body = R"(#include <stdio.h>
int main()
{
  int i;
  int a[100];
  int s = 0;

  for (i = 0; i < 100; i++)
    a[i] = i;
  for (i = 0; i < 100; i++)
    s = s + a[i];
  printf("s=%d\n", s);
  return 0;
}
)";
    b.add("sequential-orig", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = false;
    e.label = "N3";
    e.pattern = "if-serialized";
    e.description = "if(0) clause forces serial execution of the region.";
    e.body = R"(#include <stdio.h>
int main()
{
  int i;
  int x = 0;
  int cond = 0;

#pragma omp parallel for if(cond)
  for (i = 0; i < 64; i++)
    x = x + i;
  printf("x=%d\n", x);
  return 0;
}
)";
    b.add("ifserial-orig", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = false;
    e.label = "N3";
    e.pattern = "single-thread";
    e.description = "num_threads(1) makes the region effectively serial.";
    e.body = R"(#include <stdio.h>
int main()
{
  int i;
  int x = 0;

#pragma omp parallel for num_threads(1)
  for (i = 0; i < 64; i++)
    x = x + i;
  printf("x=%d\n", x);
  return 0;
}
)";
    b.add("onethread-orig", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = false;
    e.label = "N3";
    e.pattern = "guarded-disjoint";
    e.description =
        "Branchy writes still touch only the iteration's own element.";
    e.body = R"(#include <stdio.h>
int main()
{
  int i;
  int a[128];

#pragma omp parallel for
  for (i = 0; i < 128; i++) {
    if (i % 2 == 0)
      a[i] = i;
    else
      a[i] = -i;
  }
  printf("a[3]=%d\n", a[3]);
  return 0;
}
)";
    b.add("branchdisjoint-orig", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = false;
    e.label = "N3";
    e.pattern = "oversized";
    e.category = Category::AutoGen;
    e.description =
        "Oversized unrolled program (exceeds the 4k-token input limit).";
    e.body = make_long_body(/*racy=*/false, 500);
    b.add("hugeunrolled2", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = false;
    e.label = "N3";
    e.pattern = "oversized";
    e.category = Category::AutoGen;
    e.description =
        "Oversized unrolled program (exceeds the 4k-token input limit).";
    e.body = make_long_body(/*racy=*/false, 540);
    b.add("hugeunrolled3", std::move(e));
  }
}

}  // namespace drbml::drb
