// Corpus entries: kernels derived from applications (DataRaceBench's
// "from real scientific applications" category) -- linear algebra,
// Monte Carlo, particle scatter, norms, heat diffusion, and transaction
// processing.
#include "drb/corpus.hpp"

namespace drbml::drb {

namespace {

PairSpec pair(const char* w_expr, int w_occ, char w_op, const char* r_expr,
              int r_occ, char r_op) {
  PairSpec p;
  p.var0 = VarSpec{w_expr, w_occ, w_op};
  p.var1 = VarSpec{r_expr, r_occ, r_op};
  return p;
}

}  // namespace

void register_app_entries(CorpusBuilder& b) {
  {
    CorpusEntry e;
    e.race = true;
    e.label = "Y1";
    e.pattern = "prefix-sum";
    e.category = Category::FromApps;
    e.description = "Naive parallel prefix sum carries a true dependence.";
    e.body = R"(#include <stdio.h>
int main()
{
  int i;
  int v[128];
  int scan[128];

  for (i = 0; i < 128; i++)
    v[i] = i % 5;
  scan[0] = v[0];
#pragma omp parallel for
  for (i = 1; i < 128; i++)
    scan[i] = scan[i-1] + v[i];
  printf("scan[127]=%d\n", scan[127]);
  return 0;
}
)";
    e.pairs = {pair("scan[i]", 0, 'w', "scan[i-1]", 0, 'r')};
    b.add("prefixsum-app", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = true;
    e.label = "Y3";
    e.pattern = "monte-carlo";
    e.category = Category::FromApps;
    e.description = "Monte Carlo hit counter updated without reduction.";
    e.body = R"(#include <stdio.h>
#include <stdlib.h>
int main()
{
  int i;
  int hits = 0;

  srand(42);
#pragma omp parallel for
  for (i = 0; i < 200; i++) {
    double x = (rand() % 1000) / 1000.0;
    double y = (rand() % 1000) / 1000.0;
    if (x * x + y * y <= 1.0)
      hits = hits + 1;
  }
  printf("hits=%d\n", hits);
  return 0;
}
)";
    e.pairs = {pair("hits", 1, 'w', "hits", 2, 'r')};
    b.add("montecarlo-app", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = true;
    e.label = "Y3";
    e.pattern = "particle-scatter";
    e.category = Category::FromApps;
    e.description =
        "Force scatter through a particle-pair index collides on shared "
        "entries.";
    e.body = R"(#include <stdio.h>
int main()
{
  int k;
  int partner[96];
  double force[32];

  for (k = 0; k < 96; k++)
    partner[k] = (k * 7) % 32;
  for (k = 0; k < 32; k++)
    force[k] = 0.0;
#pragma omp parallel for
  for (k = 0; k < 96; k++)
    force[partner[k]] = force[partner[k]] + 0.5;
  printf("%f\n", force[0]);
  return 0;
}
)";
    e.pairs = {pair("force[partner[k]]", 0, 'w', "force[partner[k]]", 1, 'r')};
    b.add("scatterforce-app", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = true;
    e.label = "Y2";
    e.pattern = "residual-norm";
    e.category = Category::FromApps;
    e.description = "Residual max-norm accumulated without reduction(max:).";
    e.body = R"(#include <stdio.h>
#include <math.h>
int main()
{
  int i;
  double res = 0.0;
  double r[144];

  for (i = 0; i < 144; i++)
    r[i] = (i % 9) - 4.0;
#pragma omp parallel for
  for (i = 0; i < 144; i++)
    res = fmax(res, fabs(r[i]));
  printf("res=%f\n", res);
  return 0;
}
)";
    e.pairs = {pair("res", 1, 'w', "res", 2, 'r')};
    b.add("residualnorm-app", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = true;
    e.label = "Y1";
    e.pattern = "heat-2d";
    e.category = Category::FromApps;
    e.description = "2-D heat diffusion updated in place races on the halo.";
    e.body = R"(#include <stdio.h>
int main()
{
  int i;
  int j;
  double u[14][14];

  for (i = 0; i < 14; i++)
    for (j = 0; j < 14; j++)
      u[i][j] = (i == 0) ? 100.0 : 0.0;
#pragma omp parallel for private(j)
  for (i = 1; i < 13; i++)
    for (j = 1; j < 13; j++)
      u[i][j] = 0.25 * (u[i-1][j] + u[i+1][j] + u[i][j-1] + u[i][j+1]);
  printf("%f\n", u[6][6]);
  return 0;
}
)";
    e.pairs = {pair("u[i][j]", 1, 'w', "u[i-1][j]", 0, 'r'),
               pair("u[i][j]", 1, 'w', "u[i+1][j]", 0, 'r')};
    b.add("heat2dinplace-app", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = true;
    e.label = "Y3";
    e.pattern = "transactions";
    e.category = Category::FromApps;
    e.description =
        "Concurrent transfers update indirect account balances unguarded.";
    e.body = R"(#include <stdio.h>
int main()
{
  int k;
  int src_acct[48];
  int dst_acct[48];
  int balance[12];

  for (k = 0; k < 12; k++)
    balance[k] = 100;
  for (k = 0; k < 48; k++) {
    src_acct[k] = k % 12;
    dst_acct[k] = (k + 5) % 12;
  }
#pragma omp parallel for
  for (k = 0; k < 48; k++) {
    balance[src_acct[k]] = balance[src_acct[k]] - 1;
    balance[dst_acct[k]] = balance[dst_acct[k]] + 1;
  }
  printf("balance[0]=%d\n", balance[0]);
  return 0;
}
)";
    e.pairs = {pair("balance[src_acct[k]]", 0, 'w',
                    "balance[dst_acct[k]]", 1, 'r')};
    b.add("transfers-app", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = true;
    e.label = "Y2";
    e.pattern = "chars-total";
    e.category = Category::FromApps;
    e.description = "Document length accumulator left shared.";
    e.body = R"(#include <stdio.h>
int main()
{
  int i;
  int chars_total = 0;
  int doclen[80];

  for (i = 0; i < 80; i++)
    doclen[i] = 40 + (i % 25);
#pragma omp parallel for
  for (i = 0; i < 80; i++)
    chars_total = chars_total + doclen[i];
  printf("%d\n", chars_total);
  return 0;
}
)";
    e.pairs = {pair("chars_total", 1, 'w', "chars_total", 2, 'r')};
    b.add("charstotal-app", std::move(e));
  }

  // ------------------------------------------------------------ race-free

  {
    CorpusEntry e;
    e.race = false;
    e.label = "N1";
    e.pattern = "matvec";
    e.category = Category::FromApps;
    e.description = "Matrix-vector product: each row sum is private.";
    e.body = R"(#include <stdio.h>
int main()
{
  int i;
  int j;
  double mat[24][24];
  double x[24];
  double y[24];

  for (i = 0; i < 24; i++) {
    x[i] = 0.5 * i;
    for (j = 0; j < 24; j++)
      mat[i][j] = 1.0 / (1 + i + j);
  }
#pragma omp parallel for private(j)
  for (i = 0; i < 24; i++) {
    double acc = 0.0;
    for (j = 0; j < 24; j++)
      acc = acc + mat[i][j] * x[j];
    y[i] = acc;
  }
  printf("%f\n", y[3]);
  return 0;
}
)";
    b.add("matvec-app", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = false;
    e.label = "N2";
    e.pattern = "monte-carlo-reduction";
    e.category = Category::FromApps;
    e.description = "Monte Carlo hit counter with reduction(+:hits).";
    e.body = R"(#include <stdio.h>
#include <stdlib.h>
int main()
{
  int i;
  int hits = 0;

  srand(42);
#pragma omp parallel for reduction(+:hits)
  for (i = 0; i < 200; i++) {
    double x = (rand() % 1000) / 1000.0;
    double y = (rand() % 1000) / 1000.0;
    if (x * x + y * y <= 1.0)
      hits = hits + 1;
  }
  printf("hits=%d\n", hits);
  return 0;
}
)";
    b.add("montecarloreduction-app", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = false;
    e.label = "N4";
    e.pattern = "particle-scatter-atomic";
    e.category = Category::FromApps;
    e.description = "Force scatter protected by atomic updates.";
    e.body = R"(#include <stdio.h>
int main()
{
  int k;
  int partner[96];
  double force[32];

  for (k = 0; k < 96; k++)
    partner[k] = (k * 7) % 32;
  for (k = 0; k < 32; k++)
    force[k] = 0.0;
#pragma omp parallel for
  for (k = 0; k < 96; k++) {
#pragma omp atomic
    force[partner[k]] += 0.5;
  }
  printf("%f\n", force[0]);
  return 0;
}
)";
    b.add("scatteratomic-app", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = false;
    e.label = "N2";
    e.pattern = "residual-norm-reduction";
    e.category = Category::FromApps;
    e.description = "Residual max-norm with reduction(max:).";
    e.body = R"(#include <stdio.h>
#include <math.h>
int main()
{
  int i;
  double res = 0.0;
  double r[144];

  for (i = 0; i < 144; i++)
    r[i] = (i % 9) - 4.0;
#pragma omp parallel for reduction(max:res)
  for (i = 0; i < 144; i++)
    res = fmax(res, fabs(r[i]));
  printf("res=%f\n", res);
  return 0;
}
)";
    b.add("residualreduction-app", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = false;
    e.label = "N1";
    e.pattern = "heat-2d-buffered";
    e.category = Category::FromApps;
    e.description = "2-D heat diffusion with separate read/write grids.";
    e.body = R"(#include <stdio.h>
int main()
{
  int i;
  int j;
  double u[14][14];
  double unew[14][14];

  for (i = 0; i < 14; i++)
    for (j = 0; j < 14; j++)
      u[i][j] = (i == 0) ? 100.0 : 0.0;
#pragma omp parallel for private(j)
  for (i = 1; i < 13; i++)
    for (j = 1; j < 13; j++)
      unew[i][j] = 0.25 * (u[i-1][j] + u[i+1][j] + u[i][j-1] + u[i][j+1]);
  printf("%f\n", unew[6][6]);
  return 0;
}
)";
    b.add("heat2dbuffered-app", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = false;
    e.label = "N4";
    e.pattern = "transactions-critical";
    e.category = Category::FromApps;
    e.description = "Transfers serialized through a critical section.";
    e.body = R"(#include <stdio.h>
int main()
{
  int k;
  int src_acct[48];
  int dst_acct[48];
  int balance[12];

  for (k = 0; k < 12; k++)
    balance[k] = 100;
  for (k = 0; k < 48; k++) {
    src_acct[k] = k % 12;
    dst_acct[k] = (k + 5) % 12;
  }
#pragma omp parallel for
  for (k = 0; k < 48; k++) {
#pragma omp critical
    {
      balance[src_acct[k]] = balance[src_acct[k]] - 1;
      balance[dst_acct[k]] = balance[dst_acct[k]] + 1;
    }
  }
  printf("balance[0]=%d\n", balance[0]);
  return 0;
}
)";
    b.add("transferscritical-app", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = false;
    e.label = "N2";
    e.pattern = "chars-total-reduction";
    e.category = Category::FromApps;
    e.description = "Document length accumulated with reduction(+:).";
    e.body = R"(#include <stdio.h>
int main()
{
  int i;
  int chars_total = 0;
  int doclen[80];

  for (i = 0; i < 80; i++)
    doclen[i] = 40 + (i % 25);
#pragma omp parallel for reduction(+:chars_total)
  for (i = 0; i < 80; i++)
    chars_total = chars_total + doclen[i];
  printf("%d\n", chars_total);
  return 0;
}
)";
    b.add("charsreduction-app", std::move(e));
  }
}

}  // namespace drbml::drb
