// Synthetic training-data generation (paper Section 4.5: "Generating
// synthetic datasets tailored for training" as a remedy for DRB-ML's
// small size).
//
// Kernels are drawn from parameterized templates whose race verdict is
// known by construction (each template is either structurally racy or
// structurally safe for every parameter choice); sizes, strides, offsets,
// identifiers, and synchronization flavors are randomized. The test suite
// cross-validates generated labels against the dynamic detector.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace drbml::drb {

struct SynthEntry {
  std::string name;      // e.g. "SYNTH042-sharedsum-yes.c"
  std::string code;      // comment-free OpenMP C program
  bool race = false;     // ground truth (by construction)
  std::string pattern;   // template family
};

struct SynthConfig {
  int count = 100;
  std::uint64_t seed = 1;
  /// Approximate fraction of racy entries.
  double race_fraction = 0.5;
};

/// Generates `config.count` labeled synthetic kernels.
[[nodiscard]] std::vector<SynthEntry> synthesize(const SynthConfig& config);

}  // namespace drbml::drb
