// Corpus entries: task and sections pattern family.
#include "drb/corpus.hpp"

namespace drbml::drb {

namespace {

PairSpec pair(const char* w_expr, int w_occ, char w_op, const char* r_expr,
              int r_occ, char r_op) {
  PairSpec p;
  p.var0 = VarSpec{w_expr, w_occ, w_op};
  p.var1 = VarSpec{r_expr, r_occ, r_op};
  return p;
}

}  // namespace

void register_task_entries(CorpusBuilder& b) {
  {
    CorpusEntry e;
    e.race = true;
    e.label = "Y3";
    e.pattern = "task-no-sync";
    e.description = "Two tasks write the same scalar without ordering.";
    e.body = R"(#include <stdio.h>
int main()
{
  int result = 0;

#pragma omp parallel
#pragma omp single
  {
#pragma omp task
    { result = 1; }
#pragma omp task
    { result = 2; }
  }
  printf("result=%d\n", result);
  return 0;
}
)";
    e.pairs = {pair("result", 1, 'w', "result", 2, 'w')};
    b.add("taskunsync-orig", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = true;
    e.label = "Y3";
    e.pattern = "task-missing-taskwait";
    e.description = "Producer task result consumed without taskwait.";
    e.body = R"(#include <stdio.h>
int main()
{
  int produced = 0;
  int consumed = 0;

#pragma omp parallel
#pragma omp single
  {
#pragma omp task
    { produced = 41; }
    consumed = produced + 1;
  }
  printf("consumed=%d\n", consumed);
  return 0;
}
)";
    e.pairs = {pair("produced", 1, 'w', "produced", 2, 'r')};
    b.add("taskmissingwait-orig", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = true;
    e.label = "Y3";
    e.pattern = "taskdep-missing";
    e.description =
        "Task chain communicates through a scalar but omits depend clauses.";
    e.body = R"(#include <stdio.h>
int main()
{
  int stage1 = 0;
  int stage2 = 0;

#pragma omp parallel
#pragma omp single
  {
#pragma omp task
    { stage1 = 10; }
#pragma omp task
    { stage2 = stage1 + 5; }
  }
  printf("stage2=%d\n", stage2);
  return 0;
}
)";
    e.pairs = {pair("stage1", 1, 'w', "stage1", 2, 'r')};
    b.add("taskdepmissing-orig", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = true;
    e.label = "Y3";
    e.pattern = "task-in-loop";
    e.description =
        "Tasks spawned per iteration all append through a shared cursor.";
    e.body = R"(#include <stdio.h>
int main()
{
  int i;
  int cursor = 0;
  int buf[64];

#pragma omp parallel
#pragma omp single
  {
    for (i = 0; i < 32; i++) {
#pragma omp task
      {
        buf[cursor] = i;
        cursor = cursor + 1;
      }
    }
  }
  printf("cursor=%d\n", cursor);
  return 0;
}
)";
    e.pairs = {pair("cursor", 2, 'w', "cursor", 1, 'r')};
    b.add("taskcursor-orig", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = true;
    e.label = "Y3";
    e.pattern = "sections-shared";
    e.description = "Both sections update the same accumulator.";
    e.body = R"(#include <stdio.h>
int main()
{
  int acc = 0;

#pragma omp parallel sections
  {
#pragma omp section
    { acc = acc + 10; }
#pragma omp section
    { acc = acc + 20; }
  }
  printf("acc=%d\n", acc);
  return 0;
}
)";
    e.pairs = {pair("acc", 1, 'w', "acc", 4, 'r')};
    b.add("sectionsshared-orig", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = true;
    e.label = "Y3";
    e.pattern = "sections-overlap";
    e.description = "Sections write overlapping halves of one array.";
    e.body = R"(#include <stdio.h>
int main()
{
  int i;
  int arr[100];

#pragma omp parallel sections private(i)
  {
#pragma omp section
    {
      for (i = 0; i < 60; i++)
        arr[i] = 1;
    }
#pragma omp section
    {
      for (i = 40; i < 100; i++)
        arr[i] = 2;
    }
  }
  printf("arr[50]=%d\n", arr[50]);
  return 0;
}
)";
    e.pairs = {pair("arr[i]", 0, 'w', "arr[i]", 1, 'w')};
    b.add("sectionsoverlap-orig", std::move(e));
  }

  // ------------------------------------------------------------ race-free

  {
    CorpusEntry e;
    e.race = false;
    e.label = "N5";
    e.pattern = "taskwait";
    e.description = "taskwait orders producer and consumer.";
    e.body = R"(#include <stdio.h>
int main()
{
  int produced = 0;
  int consumed = 0;

#pragma omp parallel
#pragma omp single
  {
#pragma omp task
    { produced = 41; }
#pragma omp taskwait
    consumed = produced + 1;
  }
  printf("consumed=%d\n", consumed);
  return 0;
}
)";
    b.add("taskwaitchain-orig", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = false;
    e.label = "N5";
    e.pattern = "taskdep";
    e.description = "depend(out)/depend(in) orders the task chain.";
    e.body = R"(#include <stdio.h>
int main()
{
  int stage1 = 0;
  int stage2 = 0;

#pragma omp parallel
#pragma omp single
  {
#pragma omp task depend(out: stage1)
    { stage1 = 10; }
#pragma omp task depend(in: stage1)
    { stage2 = stage1 + 5; }
  }
  printf("stage2=%d\n", stage2);
  return 0;
}
)";
    b.add("taskdepchain-orig", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = false;
    e.label = "N5";
    e.pattern = "taskdep-inout";
    e.description = "Three-stage depend chain with inout in the middle.";
    e.body = R"(#include <stdio.h>
int main()
{
  int v = 1;

#pragma omp parallel
#pragma omp single
  {
#pragma omp task depend(out: v)
    { v = v + 1; }
#pragma omp task depend(inout: v)
    { v = v * 3; }
#pragma omp task depend(in: v)
    { printf("v=%d\n", v); }
  }
  return 0;
}
)";
    b.add("taskdepinout-orig", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = false;
    e.label = "N5";
    e.pattern = "task-firstprivate";
    e.description = "Loop variable captured firstprivate by each task.";
    e.body = R"(#include <stdio.h>
int main()
{
  int i;
  int buf[32];

#pragma omp parallel
#pragma omp single
  {
    for (i = 0; i < 32; i++) {
#pragma omp task firstprivate(i)
      {
        buf[i] = i * 2;
      }
    }
  }
  printf("buf[3]=%d\n", buf[3]);
  return 0;
}
)";
    b.add("taskfirstprivate-orig", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = false;
    e.label = "N5";
    e.pattern = "sections-disjoint";
    e.description = "Sections write disjoint variables.";
    e.body = R"(#include <stdio.h>
int main()
{
  int lo = 0;
  int hi = 0;

#pragma omp parallel sections
  {
#pragma omp section
    { lo = 10; }
#pragma omp section
    { hi = 20; }
  }
  printf("%d %d\n", lo, hi);
  return 0;
}
)";
    b.add("sectionsdisjoint-orig", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = false;
    e.label = "N5";
    e.pattern = "sections-halves";
    e.description = "Sections write non-overlapping halves of an array.";
    e.body = R"(#include <stdio.h>
int main()
{
  int i;
  int arr[100];

#pragma omp parallel sections private(i)
  {
#pragma omp section
    {
      for (i = 0; i < 50; i++)
        arr[i] = 1;
    }
#pragma omp section
    {
      for (i = 50; i < 100; i++)
        arr[i] = 2;
    }
  }
  printf("arr[50]=%d\n", arr[50]);
  return 0;
}
)";
    b.add("sectionshalves-orig", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = false;
    e.label = "N5";
    e.pattern = "task-critical";
    e.description = "Tasks update the shared total under a critical section.";
    e.body = R"(#include <stdio.h>
int main()
{
  int i;
  int total = 0;

#pragma omp parallel
#pragma omp single
  {
    for (i = 0; i < 16; i++) {
#pragma omp task firstprivate(i)
      {
#pragma omp critical
        { total = total + i; }
      }
    }
  }
  printf("total=%d\n", total);
  return 0;
}
)";
    b.add("taskcritical-orig", std::move(e));
  }
}

}  // namespace drbml::drb
