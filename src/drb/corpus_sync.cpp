// Corpus entries: synchronization pattern family (critical, atomic,
// barriers, master/single, ordered, OpenMP locks, nowait) -- racy and
// properly synchronized counterparts.
#include "drb/corpus.hpp"

namespace drbml::drb {

namespace {

PairSpec pair(const char* w_expr, int w_occ, char w_op, const char* r_expr,
              int r_occ, char r_op) {
  PairSpec p;
  p.var0 = VarSpec{w_expr, w_occ, w_op};
  p.var1 = VarSpec{r_expr, r_occ, r_op};
  return p;
}

}  // namespace

void register_sync_entries(CorpusBuilder& b) {
  {
    CorpusEntry e;
    e.race = true;
    e.label = "Y3";
    e.pattern = "missing-critical";
    e.description = "Unprotected update of a shared counter.";
    e.body = R"(#include <stdio.h>
int main()
{
  int i;
  int count = 0;

#pragma omp parallel for
  for (i = 0; i < 100; i++)
    count = count + 1;
  printf("count=%d\n", count);
  return 0;
}
)";
    e.pairs = {pair("count", 1, 'w', "count", 2, 'r')};
    b.add("countermissing-orig", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = true;
    e.label = "Y3";
    e.pattern = "missing-atomic";
    e.description = "Histogram update without atomic protection.";
    e.body = R"(#include <stdio.h>
int main()
{
  int i;
  int hist[10];
  int data[100];

  for (i = 0; i < 10; i++)
    hist[i] = 0;
  for (i = 0; i < 100; i++)
    data[i] = i * 7;
#pragma omp parallel for
  for (i = 0; i < 100; i++)
    hist[data[i] % 10] = hist[data[i] % 10] + 1;
  printf("hist[0]=%d\n", hist[0]);
  return 0;
}
)";
    e.pairs = {pair("hist[data[i] % 10]", 0, 'w', "hist[data[i] % 10]", 1, 'r')};
    b.add("histmissing-orig", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = true;
    e.label = "Y3";
    e.pattern = "different-critical-names";
    e.description =
        "Two critical sections with different names do not exclude each "
        "other.";
    e.body = R"(#include <stdio.h>
int main()
{
  int x = 0;

#pragma omp parallel
  {
#pragma omp critical (nameA)
    { x = x + 1; }
#pragma omp critical (nameB)
    { x = x + 2; }
  }
  printf("x=%d\n", x);
  return 0;
}
)";
    e.pairs = {pair("x", 1, 'w', "x", 4, 'r')};
    b.add("criticalnames-orig", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = true;
    e.label = "Y3";
    e.pattern = "atomic-plus-plain";
    e.description =
        "Atomic update paired with an unprotected read of the same scalar.";
    e.body = R"(#include <stdio.h>
int main()
{
  int i;
  int count = 0;
  int snapshot[100];

#pragma omp parallel for
  for (i = 0; i < 100; i++) {
#pragma omp atomic
    count += 1;
    snapshot[i] = count;
  }
  printf("count=%d\n", count);
  return 0;
}
)";
    e.pairs = {pair("count", 1, 'w', "count", 2, 'r')};
    b.add("atomicplain-orig", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = true;
    e.label = "Y3";
    e.pattern = "nowait";
    e.description =
        "nowait removes the barrier between producer and consumer loops.";
    e.body = R"(#include <stdio.h>
int main()
{
  int i;
  int a[64];
  int c[64];

  for (i = 0; i < 64; i++)
    a[i] = 0;
#pragma omp parallel
  {
#pragma omp for nowait
    for (i = 0; i < 64; i++)
      a[i] = i + 1;
#pragma omp for
    for (i = 0; i < 64; i++)
      c[i] = a[63-i];
  }
  printf("c[0]=%d\n", c[0]);
  return 0;
}
)";
    e.pairs = {pair("a[i]", 1, 'w', "a[63-i]", 0, 'r')};
    b.add("nowaitdep-orig", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = true;
    e.label = "Y3";
    e.pattern = "master-no-barrier";
    e.description = "master has no implied barrier; workers read too early.";
    e.body = R"(#include <stdio.h>
int main()
{
  int init = 0;
  int got[16];

#pragma omp parallel num_threads(4)
  {
#pragma omp master
    { init = 42; }
    got[omp_get_thread_num()] = init;
  }
  printf("got[1]=%d\n", got[1]);
  return 0;
}
)";
    e.pairs = {pair("init", 1, 'w', "init", 2, 'r')};
    b.add("masternobarrier-orig", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = true;
    e.label = "Y3";
    e.pattern = "single-nowait";
    e.description = "single nowait lets other threads run ahead of the writer.";
    e.body = R"(#include <stdio.h>
int main()
{
  int flagval = 0;
  int out[16];

#pragma omp parallel num_threads(4)
  {
#pragma omp single nowait
    { flagval = 7; }
    out[omp_get_thread_num()] = flagval;
  }
  printf("out[2]=%d\n", out[2]);
  return 0;
}
)";
    e.pairs = {pair("flagval", 1, 'w', "flagval", 2, 'r')};
    b.add("singlenowait-orig", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = true;
    e.label = "Y3";
    e.pattern = "missing-barrier";
    e.description =
        "Plain parallel region: every thread writes then reads the scalar.";
    e.body = R"(#include <stdio.h>
int main()
{
  int shared_tmp = 0;

#pragma omp parallel
  {
    shared_tmp = omp_get_thread_num();
  }
  printf("%d\n", shared_tmp);
  return 0;
}
)";
    e.pairs = {pair("shared_tmp", 1, 'w', "shared_tmp", 1, 'w')};
    b.add("allwrite-orig", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = true;
    e.label = "Y4";
    e.pattern = "flush-flag";
    e.description =
        "Busy-wait flag signalling without atomics is unordered by "
        "happens-before.";
    e.body = R"(#include <stdio.h>
int main()
{
  int flag = 0;
  int payload = 0;

#pragma omp parallel num_threads(2)
  {
    if (omp_get_thread_num() == 0) {
      payload = 99;
#pragma omp flush
      flag = 1;
    } else {
      while (flag == 0) {
#pragma omp flush
      }
      printf("%d\n", payload);
    }
  }
  return 0;
}
)";
    e.pairs = {pair("flag", 1, 'w', "flag", 2, 'r'),
               pair("payload", 1, 'w', "payload", 2, 'r')};
    b.add("flushflag-orig", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = true;
    e.label = "Y3";
    e.pattern = "lock-partial";
    e.description = "The write is lock-protected but the read is not.";
    e.body = R"(#include <stdio.h>
#include <omp.h>
int main()
{
  int i;
  int total = 0;
  int seen[64];
  omp_lock_t lck;

  omp_init_lock(&lck);
#pragma omp parallel for
  for (i = 0; i < 64; i++) {
    omp_set_lock(&lck);
    total = total + 1;
    omp_unset_lock(&lck);
    seen[i] = total;
  }
  omp_destroy_lock(&lck);
  printf("total=%d\n", total);
  return 0;
}
)";
    e.pairs = {pair("total", 1, 'w', "total", 3, 'r')};
    b.add("lockpartial-orig", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = true;
    e.label = "Y3";
    e.pattern = "ordered-clause-only";
    e.description =
        "ordered clause without an ordered region leaves the dependence "
        "unsynchronized.";
    e.body = R"(#include <stdio.h>
int main()
{
  int i;
  int a[100];

  for (i = 0; i < 100; i++)
    a[i] = i;
#pragma omp parallel for ordered
  for (i = 0; i < 99; i++)
    a[i] = a[i+1] + 1;
  printf("a[0]=%d\n", a[0]);
  return 0;
}
)";
    e.pairs = {pair("a[i]", 1, 'w', "a[i+1]", 0, 'r')};
    b.add("orderedmissing-orig", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = true;
    e.label = "Y3";
    e.pattern = "barrier-asymmetric";
    e.description =
        "Producer writes after its barrier-free single-nowait block while "
        "consumers still read.";
    e.body = R"(#include <stdio.h>
int main()
{
  int stage = 0;
  int log0[16];

#pragma omp parallel num_threads(4)
  {
    log0[omp_get_thread_num()] = stage;
#pragma omp single nowait
    { stage = stage + 1; }
  }
  printf("stage=%d\n", stage);
  return 0;
}
)";
    e.pairs = {pair("stage", 2, 'w', "stage", 1, 'r')};
    b.add("stagednowait-orig", std::move(e));
  }

  // ------------------------------------------------------------ race-free

  {
    CorpusEntry e;
    e.race = false;
    e.label = "N4";
    e.pattern = "critical";
    e.description = "Shared counter protected by a critical section.";
    e.body = R"(#include <stdio.h>
int main()
{
  int i;
  int count = 0;

#pragma omp parallel for
  for (i = 0; i < 100; i++) {
#pragma omp critical
    { count = count + 1; }
  }
  printf("count=%d\n", count);
  return 0;
}
)";
    b.add("countercritical-orig", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = false;
    e.label = "N4";
    e.pattern = "atomic";
    e.description = "Shared counter protected by an atomic update.";
    e.body = R"(#include <stdio.h>
int main()
{
  int i;
  int count = 0;

#pragma omp parallel for
  for (i = 0; i < 100; i++) {
#pragma omp atomic
    count += 1;
  }
  printf("count=%d\n", count);
  return 0;
}
)";
    b.add("counteratomic-orig", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = false;
    e.label = "N4";
    e.pattern = "named-critical";
    e.description = "Both updates use the same named critical section.";
    e.body = R"(#include <stdio.h>
int main()
{
  int x = 0;

#pragma omp parallel
  {
#pragma omp critical (guard)
    { x = x + 1; }
#pragma omp critical (guard)
    { x = x + 2; }
  }
  printf("x=%d\n", x);
  return 0;
}
)";
    b.add("criticalsame-orig", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = false;
    e.label = "N4";
    e.pattern = "barrier";
    e.description = "Explicit barrier separates the write from the reads.";
    e.body = R"(#include <stdio.h>
int main()
{
  int init = 0;
  int got[16];

#pragma omp parallel num_threads(4)
  {
#pragma omp single
    { init = 42; }
    got[omp_get_thread_num()] = init;
  }
  printf("got[1]=%d\n", got[1]);
  return 0;
}
)";
    b.add("singlebarrier-orig", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = false;
    e.label = "N4";
    e.pattern = "barrier-explicit";
    e.description = "Producer/consumer loops separated by the implied barrier.";
    e.body = R"(#include <stdio.h>
int main()
{
  int i;
  int a[64];
  int c[64];

#pragma omp parallel
  {
#pragma omp for
    for (i = 0; i < 64; i++)
      a[i] = i + 1;
#pragma omp for
    for (i = 0; i < 64; i++)
      c[i] = a[63-i];
  }
  printf("c[0]=%d\n", c[0]);
  return 0;
}
)";
    b.add("forbarrier-orig", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = false;
    e.label = "N4";
    e.pattern = "omp-lock";
    e.description = "All accesses to the shared total hold the same lock.";
    e.body = R"(#include <stdio.h>
#include <omp.h>
int main()
{
  int i;
  int total = 0;
  omp_lock_t lck;

  omp_init_lock(&lck);
#pragma omp parallel for
  for (i = 0; i < 64; i++) {
    omp_set_lock(&lck);
    total = total + 1;
    omp_unset_lock(&lck);
  }
  omp_destroy_lock(&lck);
  printf("total=%d\n", total);
  return 0;
}
)";
    b.add("lockfull-orig", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = false;
    e.label = "N4";
    e.pattern = "ordered";
    e.description = "Loop-carried dependence serialized by an ordered region.";
    e.body = R"(#include <stdio.h>
int main()
{
  int i;
  int x = 0;

#pragma omp parallel for ordered
  for (i = 0; i < 50; i++) {
#pragma omp ordered
    { x = x + i; }
  }
  printf("x=%d\n", x);
  return 0;
}
)";
    b.add("orderedchain-orig", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = false;
    e.label = "N4";
    e.pattern = "per-thread-slot";
    e.description = "Each thread writes only its own slot.";
    e.body = R"(#include <stdio.h>
int main()
{
  int slots[16];
  int i;

  for (i = 0; i < 16; i++)
    slots[i] = 0;
#pragma omp parallel num_threads(4)
  {
    slots[omp_get_thread_num()] = omp_get_thread_num() + 1;
  }
  printf("slots[0]=%d\n", slots[0]);
  return 0;
}
)";
    b.add("threadslots-orig", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = false;
    e.label = "N4";
    e.pattern = "master-then-barrier";
    e.description = "master writes, then an explicit barrier orders readers.";
    e.body = R"(#include <stdio.h>
int main()
{
  int config = 0;
  int got[16];

#pragma omp parallel num_threads(4)
  {
#pragma omp master
    { config = 5; }
#pragma omp barrier
    got[omp_get_thread_num()] = config;
  }
  printf("got[3]=%d\n", got[3]);
  return 0;
}
)";
    b.add("masterbarrier-orig", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = false;
    e.label = "N4";
    e.pattern = "read-only";
    e.description = "Shared table is only read inside the region.";
    e.body = R"(#include <stdio.h>
int main()
{
  int i;
  int table[100];
  int out[100];

  for (i = 0; i < 100; i++)
    table[i] = i * 3;
#pragma omp parallel for
  for (i = 0; i < 100; i++)
    out[i] = table[i] + table[(i + 50) % 100];
  printf("out[0]=%d\n", out[0]);
  return 0;
}
)";
    b.add("readonly-orig", std::move(e));
  }
  {
    CorpusEntry e;
    e.race = false;
    e.label = "N4";
    e.pattern = "atomic-capture";
    e.description = "Ticket counter implemented with atomic capture.";
    e.body = R"(#include <stdio.h>
int main()
{
  int i;
  int ticket = 0;

#pragma omp parallel for
  for (i = 0; i < 32; i++) {
#pragma omp atomic capture
    ticket++;
  }
  printf("ticket=%d\n", ticket);
  return 0;
}
)";
    b.add("atomiccapture-orig", std::move(e));
  }
}

}  // namespace drbml::drb
