// Renders AST nodes back to C-like source text.
//
// `expr_to_string` is load-bearing: ground-truth labels and model outputs
// describe race variables by their source spelling (e.g. "a[i+1]"), and the
// evaluator compares those spellings.
#pragma once

#include <string>

#include "minic/ast.hpp"

namespace drbml::minic {

[[nodiscard]] std::string expr_to_string(const Expr& e);

/// Renders one OpenMP clause in canonical spelling (e.g.
/// "reduction(+:sum)"). Exposed for the repair subsystem's patch engine,
/// which re-renders edited pragma lines through the printer so textual
/// patches and AST rewrites cannot drift apart.
[[nodiscard]] std::string clause_to_string(const OmpClause& c);

/// Pretty-prints a statement subtree with `indent` leading spaces per level.
[[nodiscard]] std::string stmt_to_string(const Stmt& s, int indent = 0);

[[nodiscard]] std::string directive_to_string(const OmpDirective& d);

/// Renders a whole translation unit (used by round-trip tests).
[[nodiscard]] std::string unit_to_string(const TranslationUnit& tu);

}  // namespace drbml::minic
