// Token model for the Mini-C lexer.
#pragma once

#include <cstdint>
#include <string>

#include "minic/source.hpp"

namespace drbml::minic {

enum class TokenKind {
  End,
  Identifier,
  Keyword,
  IntLiteral,
  FloatLiteral,
  StringLiteral,
  CharLiteral,
  Punct,    // operators and punctuation, text holds the spelling
  Pragma,   // a full `#pragma ...` line; text holds everything after '#'
};

struct Token {
  TokenKind kind = TokenKind::End;
  std::string text;       // spelling (for literals: raw spelling)
  SourceLoc loc;          // position of the first character
  std::int64_t int_value = 0;
  double float_value = 0.0;
  std::string string_value;  // decoded string/char literal contents

  [[nodiscard]] bool is(TokenKind k) const noexcept { return kind == k; }
  [[nodiscard]] bool is_punct(const char* spelling) const noexcept {
    return kind == TokenKind::Punct && text == spelling;
  }
  [[nodiscard]] bool is_keyword(const char* kw) const noexcept {
    return kind == TokenKind::Keyword && text == kw;
  }
  [[nodiscard]] bool is_ident(const char* name) const noexcept {
    return kind == TokenKind::Identifier && text == name;
  }
};

}  // namespace drbml::minic
