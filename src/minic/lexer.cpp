#include "minic/lexer.hpp"

#include <array>
#include <cctype>
#include <charconv>
#include <string>

#include "support/error.hpp"

namespace drbml::minic {

namespace {

constexpr std::array kKeywords = {
    "void",     "char",   "short",    "int",      "long",   "float",
    "double",   "signed", "unsigned", "const",    "static", "struct",
    "if",       "else",   "for",      "while",    "do",     "return",
    "break",    "continue", "sizeof", "extern",   "bool",   "volatile",
};

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) {}

  std::vector<Token> run() {
    std::vector<Token> out;
    for (;;) {
      skip_space_and_directives(out);
      if (eof()) break;
      out.push_back(next_token());
    }
    Token end;
    end.kind = TokenKind::End;
    end.loc = loc();
    out.push_back(end);
    return out;
  }

 private:
  [[nodiscard]] bool eof() const noexcept { return pos_ >= src_.size(); }
  [[nodiscard]] char peek(std::size_t ahead = 0) const noexcept {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }
  char advance() noexcept {
    char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }
  [[nodiscard]] SourceLoc loc() const noexcept { return {line_, col_}; }

  [[noreturn]] void fail(const std::string& msg) const {
    throw ParseError(msg, line_, col_);
  }

  void skip_space_and_directives(std::vector<Token>& out) {
    for (;;) {
      while (!eof() &&
             std::isspace(static_cast<unsigned char>(peek())) != 0) {
        advance();
      }
      if (eof()) return;
      // Comments.
      if (peek() == '/' && peek(1) == '/') {
        while (!eof() && peek() != '\n') advance();
        continue;
      }
      if (peek() == '/' && peek(1) == '*') {
        advance();
        advance();
        while (!eof() && !(peek() == '*' && peek(1) == '/')) advance();
        if (eof()) fail("unterminated block comment");
        advance();
        advance();
        continue;
      }
      // Preprocessor lines.
      if (peek() == '#') {
        SourceLoc start = loc();
        std::string text;
        advance();  // '#'
        while (!eof()) {
          if (peek() == '\\' && peek(1) == '\n') {
            advance();
            advance();
            text.push_back(' ');
            continue;
          }
          if (peek() == '\n') break;
          text.push_back(advance());
        }
        // `# pragma omp ...` becomes a token; `#include`/`#define` are
        // ignored (the corpus only includes hosted headers).
        std::string_view body = text;
        std::size_t i = 0;
        while (i < body.size() &&
               std::isspace(static_cast<unsigned char>(body[i])) != 0) {
          ++i;
        }
        if (body.substr(i, 6) == "pragma") {
          Token t;
          t.kind = TokenKind::Pragma;
          t.text = std::string(body.substr(i + 6));
          t.loc = start;
          out.push_back(t);
        }
        continue;
      }
      return;
    }
  }

  Token next_token() {
    const SourceLoc start = loc();
    char c = peek();
    if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_') {
      return lex_word(start);
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))) != 0)) {
      return lex_number(start);
    }
    if (c == '"') return lex_string(start);
    if (c == '\'') return lex_char(start);
    return lex_punct(start);
  }

  Token lex_word(SourceLoc start) {
    std::string word;
    while (!eof() &&
           (std::isalnum(static_cast<unsigned char>(peek())) != 0 ||
            peek() == '_')) {
      word.push_back(advance());
    }
    Token t;
    t.kind = is_keyword_word(word) ? TokenKind::Keyword : TokenKind::Identifier;
    t.text = std::move(word);
    t.loc = start;
    return t;
  }

  Token lex_number(SourceLoc start) {
    std::string spelling;
    bool is_float = false;
    bool is_hex = false;
    if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
      is_hex = true;
      spelling.push_back(advance());
      spelling.push_back(advance());
      while (!eof() &&
             std::isxdigit(static_cast<unsigned char>(peek())) != 0) {
        spelling.push_back(advance());
      }
    } else {
      while (!eof() &&
             (std::isdigit(static_cast<unsigned char>(peek())) != 0 ||
              peek() == '.')) {
        if (peek() == '.') is_float = true;
        spelling.push_back(advance());
      }
      if (!eof() && (peek() == 'e' || peek() == 'E')) {
        is_float = true;
        spelling.push_back(advance());
        if (!eof() && (peek() == '+' || peek() == '-')) {
          spelling.push_back(advance());
        }
        while (!eof() &&
               std::isdigit(static_cast<unsigned char>(peek())) != 0) {
          spelling.push_back(advance());
        }
      }
    }
    // Suffixes (u, l, f) are consumed and ignored.
    while (!eof() && (peek() == 'u' || peek() == 'U' || peek() == 'l' ||
                      peek() == 'L' || peek() == 'f' || peek() == 'F')) {
      if (peek() == 'f' || peek() == 'F') is_float = true;
      advance();
    }

    Token t;
    t.loc = start;
    t.text = spelling;
    try {
      if (is_float) {
        t.kind = TokenKind::FloatLiteral;
        t.float_value = std::stod(spelling);
      } else {
        t.kind = TokenKind::IntLiteral;
        if (is_hex) {
          if (spelling.size() <= 2) fail("hex literal without digits");
          t.int_value = static_cast<std::int64_t>(
              std::stoull(spelling.substr(2), nullptr, 16));
        } else {
          t.int_value = std::stoll(spelling);
        }
      }
    } catch (const std::invalid_argument&) {
      fail("malformed numeric literal '" + spelling + "'");
    } catch (const std::out_of_range&) {
      fail("numeric literal out of range: '" + spelling + "'");
    }
    return t;
  }

  char decode_escape() {
    char e = advance();
    switch (e) {
      case 'n': return '\n';
      case 't': return '\t';
      case 'r': return '\r';
      case '0': return '\0';
      case '\\': return '\\';
      case '\'': return '\'';
      case '"': return '"';
      default: fail(std::string("unknown escape \\") + e);
    }
  }

  Token lex_string(SourceLoc start) {
    advance();  // opening quote
    std::string value;
    std::string spelling = "\"";
    while (!eof() && peek() != '"') {
      if (peek() == '\n') fail("newline in string literal");
      char c = advance();
      spelling.push_back(c);
      if (c == '\\') {
        char d = decode_escape();
        spelling.push_back(src_[pos_ - 1]);
        value.push_back(d);
      } else {
        value.push_back(c);
      }
    }
    if (eof()) fail("unterminated string literal");
    advance();
    spelling.push_back('"');
    Token t;
    t.kind = TokenKind::StringLiteral;
    t.loc = start;
    t.text = std::move(spelling);
    t.string_value = std::move(value);
    return t;
  }

  Token lex_char(SourceLoc start) {
    advance();  // opening quote
    if (eof()) fail("unterminated char literal");
    char value = 0;
    if (peek() == '\\') {
      advance();
      value = decode_escape();
    } else {
      value = advance();
    }
    if (eof() || peek() != '\'') fail("unterminated char literal");
    advance();
    Token t;
    t.kind = TokenKind::CharLiteral;
    t.loc = start;
    t.text = std::string("'") + value + "'";
    t.int_value = value;
    return t;
  }

  Token lex_punct(SourceLoc start) {
    static constexpr std::array kThree = {"<<=", ">>=", "..."};
    static constexpr std::array kTwo = {
        "==", "!=", "<=", ">=", "&&", "||", "++", "--", "+=", "-=",
        "*=", "/=", "%=", "&=", "|=", "^=", "<<", ">>", "->",
    };
    Token t;
    t.kind = TokenKind::Punct;
    t.loc = start;
    for (const char* p3 : kThree) {
      if (peek() == p3[0] && peek(1) == p3[1] && peek(2) == p3[2]) {
        t.text = p3;
        advance();
        advance();
        advance();
        return t;
      }
    }
    for (const char* p2 : kTwo) {
      if (peek() == p2[0] && peek(1) == p2[1]) {
        t.text = p2;
        advance();
        advance();
        return t;
      }
    }
    static constexpr std::string_view kSingles = "+-*/%<>=!&|^~?:;,.(){}[]";
    if (kSingles.find(peek()) == std::string_view::npos) {
      fail(std::string("unexpected character '") + peek() + "'");
    }
    t.text = std::string(1, advance());
    return t;
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

}  // namespace

bool is_keyword_word(std::string_view word) noexcept {
  for (const char* kw : kKeywords) {
    if (word == kw) return true;
  }
  return false;
}

std::vector<Token> lex(std::string_view source) {
  return Lexer(source).run();
}

}  // namespace drbml::minic
