// Recursive-descent parser for the Mini-C + OpenMP subset.
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "minic/ast.hpp"
#include "minic/token.hpp"

namespace drbml::minic {

/// Parses a token stream into a translation unit. Throws ParseError.
[[nodiscard]] std::unique_ptr<TranslationUnit> parse_tokens(
    std::vector<Token> tokens);

/// Convenience pipeline: strips comments, lexes the trimmed text (so all
/// AST locations are in trimmed-code coordinates), and parses.
[[nodiscard]] Program parse_program(std::string_view source);

/// Parses the text of a single `#pragma` (everything after `#pragma`),
/// e.g. " omp parallel for private(i)". Used by the parser itself and by
/// tests. `loc` is the location of the pragma line.
[[nodiscard]] OmpDirective parse_omp_pragma(std::string_view pragma_text,
                                            SourceLoc loc);

}  // namespace drbml::minic
