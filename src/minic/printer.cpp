#include "minic/printer.hpp"

#include <cmath>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace drbml::minic {

namespace {

const char* binary_op_spelling(BinaryOp op) {
  switch (op) {
    case BinaryOp::Add: return "+";
    case BinaryOp::Sub: return "-";
    case BinaryOp::Mul: return "*";
    case BinaryOp::Div: return "/";
    case BinaryOp::Mod: return "%";
    case BinaryOp::Shl: return "<<";
    case BinaryOp::Shr: return ">>";
    case BinaryOp::Lt: return "<";
    case BinaryOp::Gt: return ">";
    case BinaryOp::Le: return "<=";
    case BinaryOp::Ge: return ">=";
    case BinaryOp::Eq: return "==";
    case BinaryOp::Ne: return "!=";
    case BinaryOp::LogicalAnd: return "&&";
    case BinaryOp::LogicalOr: return "||";
    case BinaryOp::BitAnd: return "&";
    case BinaryOp::BitOr: return "|";
    case BinaryOp::BitXor: return "^";
    case BinaryOp::Comma: return ",";
  }
  return "?";
}

const char* assign_op_spelling(AssignOp op) {
  switch (op) {
    case AssignOp::Assign: return "=";
    case AssignOp::Add: return "+=";
    case AssignOp::Sub: return "-=";
    case AssignOp::Mul: return "*=";
    case AssignOp::Div: return "/=";
    case AssignOp::Mod: return "%=";
    case AssignOp::Shl: return "<<=";
    case AssignOp::Shr: return ">>=";
    case AssignOp::And: return "&=";
    case AssignOp::Or: return "|=";
    case AssignOp::Xor: return "^=";
  }
  return "?";
}

std::string pad(int n) { return std::string(static_cast<std::size_t>(n), ' '); }

std::string decl_to_string(const VarDecl& d) {
  std::string out = type_to_string(d.type) + " " + d.name;
  for (const auto& dim : d.array_dims) {
    out += '[';
    if (dim) out += expr_to_string(*dim);
    out += ']';
  }
  if (d.init) {
    out += " = ";
    out += expr_to_string(*d.init);
  }
  return out;
}

}  // namespace

std::string expr_to_string(const Expr& e) {
  switch (e.kind) {
    case ExprKind::IntLit:
      return std::to_string(static_cast<const IntLit&>(e).value);
    case ExprKind::FloatLit: {
      const double v = static_cast<const FloatLit&>(e).value;
      std::string s = format_double(v, 6);
      // Trim trailing zeros but keep one decimal.
      while (s.size() > 1 && s.back() == '0' &&
             s[s.size() - 2] != '.') {
        s.pop_back();
      }
      return s;
    }
    case ExprKind::StringLit: {
      std::string out = "\"";
      for (char c : static_cast<const StringLit&>(e).value) {
        switch (c) {
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          default: out.push_back(c);
        }
      }
      return out + "\"";
    }
    case ExprKind::CharLit:
      return std::string("'") + static_cast<const CharLit&>(e).value + "'";
    case ExprKind::Ident:
      return static_cast<const Ident&>(e).name;
    case ExprKind::Subscript: {
      const auto& s = static_cast<const Subscript&>(e);
      return expr_to_string(*s.base) + "[" + expr_to_string(*s.index) + "]";
    }
    case ExprKind::Unary: {
      const auto& u = static_cast<const Unary&>(e);
      const std::string inner = expr_to_string(*u.operand);
      switch (u.op) {
        case UnaryOp::Plus: return "+" + inner;
        case UnaryOp::Neg: return "-" + inner;
        case UnaryOp::Not: return "!" + inner;
        case UnaryOp::BitNot: return "~" + inner;
        case UnaryOp::PreInc: return "++" + inner;
        case UnaryOp::PreDec: return "--" + inner;
        case UnaryOp::PostInc: return inner + "++";
        case UnaryOp::PostDec: return inner + "--";
        case UnaryOp::AddrOf: return "&" + inner;
        case UnaryOp::Deref: return "*" + inner;
      }
      return inner;
    }
    case ExprKind::Binary: {
      const auto& b = static_cast<const Binary&>(e);
      if (b.op == BinaryOp::Comma) {
        return expr_to_string(*b.lhs) + ", " + expr_to_string(*b.rhs);
      }
      // Parenthesize nested binaries conservatively; identifiers and
      // literals stay bare so common spellings like "a[i+1]" round-trip.
      auto side = [](const Expr& x) {
        std::string s = expr_to_string(x);
        if (x.kind == ExprKind::Binary &&
            static_cast<const Binary&>(x).op != BinaryOp::Comma) {
          // keep arithmetic chains unparenthesized for readability
          return s;
        }
        return s;
      };
      return side(*b.lhs) + binary_op_spelling(b.op) + side(*b.rhs);
    }
    case ExprKind::Assign: {
      const auto& a = static_cast<const Assign&>(e);
      return expr_to_string(*a.target) + " " + assign_op_spelling(a.op) +
             " " + expr_to_string(*a.value);
    }
    case ExprKind::Conditional: {
      const auto& c = static_cast<const Conditional&>(e);
      return expr_to_string(*c.cond) + " ? " + expr_to_string(*c.then_expr) +
             " : " + expr_to_string(*c.else_expr);
    }
    case ExprKind::Call: {
      const auto& c = static_cast<const Call&>(e);
      if (c.callee == "__init_list") {
        std::string out = "{";
        for (std::size_t i = 0; i < c.args.size(); ++i) {
          if (i != 0) out += ", ";
          out += expr_to_string(*c.args[i]);
        }
        return out + "}";
      }
      std::string out = c.callee + "(";
      for (std::size_t i = 0; i < c.args.size(); ++i) {
        if (i != 0) out += ", ";
        out += expr_to_string(*c.args[i]);
      }
      return out + ")";
    }
    case ExprKind::Cast: {
      const auto& c = static_cast<const Cast&>(e);
      return "(" + type_to_string(c.type) + ")" + expr_to_string(*c.operand);
    }
  }
  return "?";
}

std::string clause_to_string(const OmpClause& c) {
  std::string out;
  auto var_list = [&](const char* name) {
    std::string s = std::string(name) + "(";
    for (std::size_t i = 0; i < c.vars.size(); ++i) {
      if (i != 0) s += ",";
      s += c.vars[i];
    }
    return s + ")";
  };
  switch (c.kind) {
    case OmpClauseKind::Private: out += var_list("private"); break;
    case OmpClauseKind::FirstPrivate: out += var_list("firstprivate"); break;
    case OmpClauseKind::LastPrivate: out += var_list("lastprivate"); break;
    case OmpClauseKind::Shared: out += var_list("shared"); break;
    case OmpClauseKind::Copyprivate: out += var_list("copyprivate"); break;
    case OmpClauseKind::Linear: out += var_list("linear"); break;
    case OmpClauseKind::Reduction: {
      out += "reduction(" + c.arg + ":";
      for (std::size_t i = 0; i < c.vars.size(); ++i) {
        if (i != 0) out += ",";
        out += c.vars[i];
      }
      out += ")";
      break;
    }
    case OmpClauseKind::Schedule:
      out += "schedule(" + c.arg;
      if (c.expr) out += "," + expr_to_string(*c.expr);
      out += ")";
      break;
    case OmpClauseKind::NumThreads:
      out += "num_threads(" + (c.expr ? expr_to_string(*c.expr) : "") + ")";
      break;
    case OmpClauseKind::Collapse:
      out += "collapse(" + std::to_string(c.int_arg) + ")";
      break;
    case OmpClauseKind::Nowait: out += "nowait"; break;
    case OmpClauseKind::Ordered:
      out += "ordered";
      if (c.int_arg > 0) out += "(" + std::to_string(c.int_arg) + ")";
      break;
    case OmpClauseKind::Depend: {
      out += "depend(" + c.arg + ":";
      for (std::size_t i = 0; i < c.vars.size(); ++i) {
        if (i != 0) out += ",";
        out += c.vars[i];
      }
      out += ")";
      break;
    }
    case OmpClauseKind::Map: {
      out += "map(";
      if (!c.arg.empty()) out += c.arg + ":";
      for (std::size_t i = 0; i < c.vars.size(); ++i) {
        if (i != 0) out += ",";
        out += c.vars[i];
      }
      out += ")";
      break;
    }
    case OmpClauseKind::Safelen:
      out += "safelen(" + std::to_string(c.int_arg) + ")";
      break;
    case OmpClauseKind::Default: out += "default(" + c.arg + ")"; break;
    case OmpClauseKind::If:
      out += "if(" + (c.expr ? expr_to_string(*c.expr) : "") + ")";
      break;
    case OmpClauseKind::Device:
      out += "device(" + (c.expr ? expr_to_string(*c.expr) : "") + ")";
      break;
  }
  return out;
}

std::string directive_to_string(const OmpDirective& d) {
  std::string out = "#pragma omp " + omp_directive_kind_name(d.kind);
  if (d.kind == OmpDirectiveKind::Critical && !d.critical_name.empty()) {
    out += " (" + d.critical_name + ")";
  }
  if (d.kind == OmpDirectiveKind::Atomic) {
    switch (d.atomic_kind) {
      case OmpAtomicKind::Update: break;
      case OmpAtomicKind::Read: out += " read"; break;
      case OmpAtomicKind::Write: out += " write"; break;
      case OmpAtomicKind::Capture: out += " capture"; break;
    }
  }
  for (const auto& c : d.clauses) {
    out += ' ';
    out += clause_to_string(c);
  }
  return out;
}

std::string stmt_to_string(const Stmt& s, int indent) {
  const std::string p = pad(indent);
  switch (s.kind) {
    case StmtKind::Decl: {
      const auto& d = static_cast<const DeclStmt&>(s);
      std::string out;
      for (const auto& v : d.decls) {
        out += p + decl_to_string(*v) + ";\n";
      }
      return out;
    }
    case StmtKind::Expr:
      return p + expr_to_string(*static_cast<const ExprStmt&>(s).expr) + ";\n";
    case StmtKind::Compound: {
      const auto& c = static_cast<const CompoundStmt&>(s);
      std::string out = p + "{\n";
      for (const auto& st : c.body) out += stmt_to_string(*st, indent + 2);
      out += p + "}\n";
      return out;
    }
    case StmtKind::If: {
      const auto& i = static_cast<const IfStmt&>(s);
      std::string out = p + "if (" + expr_to_string(*i.cond) + ")\n";
      out += stmt_to_string(*i.then_branch, indent + 2);
      if (i.else_branch) {
        out += p + "else\n";
        out += stmt_to_string(*i.else_branch, indent + 2);
      }
      return out;
    }
    case StmtKind::For: {
      const auto& f = static_cast<const ForStmt&>(s);
      std::string init;
      if (f.init && f.init->kind == StmtKind::Decl) {
        const auto& d = static_cast<const DeclStmt&>(*f.init);
        for (std::size_t i = 0; i < d.decls.size(); ++i) {
          if (i != 0) init += ", ";
          init += decl_to_string(*d.decls[i]);
        }
      } else if (f.init && f.init->kind == StmtKind::Expr) {
        init = expr_to_string(*static_cast<const ExprStmt&>(*f.init).expr);
      }
      std::string out = p + "for (" + init + "; " +
                        (f.cond ? expr_to_string(*f.cond) : "") + "; " +
                        (f.inc ? expr_to_string(*f.inc) : "") + ")\n";
      out += stmt_to_string(*f.body, indent + 2);
      return out;
    }
    case StmtKind::While: {
      const auto& w = static_cast<const WhileStmt&>(s);
      return p + "while (" + expr_to_string(*w.cond) + ")\n" +
             stmt_to_string(*w.body, indent + 2);
    }
    case StmtKind::Do: {
      const auto& d = static_cast<const DoStmt&>(s);
      return p + "do\n" + stmt_to_string(*d.body, indent + 2) + p +
             "while (" + expr_to_string(*d.cond) + ");\n";
    }
    case StmtKind::Return: {
      const auto& r = static_cast<const ReturnStmt&>(s);
      if (r.value) return p + "return " + expr_to_string(*r.value) + ";\n";
      return p + "return;\n";
    }
    case StmtKind::Break: return p + "break;\n";
    case StmtKind::Continue: return p + "continue;\n";
    case StmtKind::Null: return p + ";\n";
    case StmtKind::Omp: {
      const auto& o = static_cast<const OmpStmt&>(s);
      std::string out = p + directive_to_string(o.directive) + "\n";
      if (o.body) out += stmt_to_string(*o.body, indent + 2);
      return out;
    }
  }
  return p + "?;\n";
}

std::string unit_to_string(const TranslationUnit& tu) {
  std::string out;
  for (const auto& d : tu.global_directives) {
    out += directive_to_string(d) + "\n";
  }
  for (const auto& g : tu.globals) {
    out += decl_to_string(*g) + ";\n";
  }
  for (const auto& f : tu.functions) {
    out += type_to_string(f->return_type) + " " + f->name + "(";
    for (std::size_t i = 0; i < f->params.size(); ++i) {
      if (i != 0) out += ", ";
      out += decl_to_string(*f->params[i]);
    }
    out += ")";
    if (f->body) {
      out += "\n" + stmt_to_string(*f->body, 0);
    } else {
      out += ";\n";
    }
  }
  return out;
}

}  // namespace drbml::minic
