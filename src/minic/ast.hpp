// Abstract syntax tree for the Mini-C + OpenMP subset.
//
// Nodes are plain data owned through unique_ptr; analyses navigate via the
// Kind tags and the `expr_cast` / `stmt_cast` helpers. Source locations are
// in *trimmed-code* coordinates (comments removed), matching the coordinate
// system DRB-ML labels use.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "minic/source.hpp"

namespace drbml::minic {

// ---------------------------------------------------------------------------
// Types

enum class TypeKind { Void, Bool, Char, Short, Int, Long, Float, Double };

struct Type {
  TypeKind kind = TypeKind::Int;
  int pointer_depth = 0;   // `int*` -> 1, `char**` -> 2
  bool is_unsigned = false;
  bool is_const = false;

  [[nodiscard]] bool is_floating() const noexcept {
    return pointer_depth == 0 &&
           (kind == TypeKind::Float || kind == TypeKind::Double);
  }
  [[nodiscard]] bool is_pointer() const noexcept { return pointer_depth > 0; }

  friend bool operator==(const Type&, const Type&) = default;
};

[[nodiscard]] std::string type_to_string(const Type& t);

// ---------------------------------------------------------------------------
// Expressions

enum class ExprKind {
  IntLit,
  FloatLit,
  StringLit,
  CharLit,
  Ident,
  Subscript,
  Unary,
  Binary,
  Assign,
  Conditional,
  Call,
  Cast,
};

struct VarDecl;  // forward

struct Expr {
  explicit Expr(ExprKind k) : kind(k) {}
  virtual ~Expr() = default;
  Expr(const Expr&) = delete;
  Expr& operator=(const Expr&) = delete;

  ExprKind kind;
  SourceLoc loc;
};

using ExprPtr = std::unique_ptr<Expr>;

struct IntLit : Expr {
  IntLit() : Expr(ExprKind::IntLit) {}
  static constexpr ExprKind kClass = ExprKind::IntLit;
  std::int64_t value = 0;
};

struct FloatLit : Expr {
  FloatLit() : Expr(ExprKind::FloatLit) {}
  static constexpr ExprKind kClass = ExprKind::FloatLit;
  double value = 0.0;
};

struct StringLit : Expr {
  StringLit() : Expr(ExprKind::StringLit) {}
  static constexpr ExprKind kClass = ExprKind::StringLit;
  std::string value;
};

struct CharLit : Expr {
  CharLit() : Expr(ExprKind::CharLit) {}
  static constexpr ExprKind kClass = ExprKind::CharLit;
  char value = 0;
};

struct Ident : Expr {
  Ident() : Expr(ExprKind::Ident) {}
  static constexpr ExprKind kClass = ExprKind::Ident;
  std::string name;
  /// Bound by the resolver; null until resolution (or for unknown externs).
  const VarDecl* decl = nullptr;
};

struct Subscript : Expr {
  Subscript() : Expr(ExprKind::Subscript) {}
  static constexpr ExprKind kClass = ExprKind::Subscript;
  ExprPtr base;
  ExprPtr index;
};

enum class UnaryOp {
  Plus,
  Neg,
  Not,
  BitNot,
  PreInc,
  PreDec,
  PostInc,
  PostDec,
  AddrOf,
  Deref,
};

struct Unary : Expr {
  Unary() : Expr(ExprKind::Unary) {}
  static constexpr ExprKind kClass = ExprKind::Unary;
  UnaryOp op = UnaryOp::Plus;
  ExprPtr operand;
};

enum class BinaryOp {
  Add, Sub, Mul, Div, Mod,
  Shl, Shr,
  Lt, Gt, Le, Ge, Eq, Ne,
  LogicalAnd, LogicalOr,
  BitAnd, BitOr, BitXor,
  Comma,
};

struct Binary : Expr {
  Binary() : Expr(ExprKind::Binary) {}
  static constexpr ExprKind kClass = ExprKind::Binary;
  BinaryOp op = BinaryOp::Add;
  ExprPtr lhs;
  ExprPtr rhs;
};

enum class AssignOp { Assign, Add, Sub, Mul, Div, Mod, Shl, Shr, And, Or, Xor };

struct Assign : Expr {
  Assign() : Expr(ExprKind::Assign) {}
  static constexpr ExprKind kClass = ExprKind::Assign;
  AssignOp op = AssignOp::Assign;
  ExprPtr target;
  ExprPtr value;
};

struct Conditional : Expr {
  Conditional() : Expr(ExprKind::Conditional) {}
  static constexpr ExprKind kClass = ExprKind::Conditional;
  ExprPtr cond;
  ExprPtr then_expr;
  ExprPtr else_expr;
};

struct Call : Expr {
  Call() : Expr(ExprKind::Call) {}
  static constexpr ExprKind kClass = ExprKind::Call;
  std::string callee;
  std::vector<ExprPtr> args;
};

struct Cast : Expr {
  Cast() : Expr(ExprKind::Cast) {}
  static constexpr ExprKind kClass = ExprKind::Cast;
  Type type;
  ExprPtr operand;
};

/// Checked downcast: returns nullptr when the node is a different kind.
template <typename T>
[[nodiscard]] const T* expr_cast(const Expr* e) noexcept {
  return (e != nullptr && e->kind == T::kClass) ? static_cast<const T*>(e)
                                                : nullptr;
}
template <typename T>
[[nodiscard]] T* expr_cast(Expr* e) noexcept {
  return (e != nullptr && e->kind == T::kClass) ? static_cast<T*>(e) : nullptr;
}

// ---------------------------------------------------------------------------
// OpenMP directives

enum class OmpDirectiveKind {
  Parallel,
  For,
  ParallelFor,
  Simd,
  ForSimd,
  ParallelForSimd,
  Critical,
  Atomic,
  Barrier,
  Single,
  Master,
  Sections,
  ParallelSections,
  Section,
  Task,
  Taskwait,
  Ordered,
  Threadprivate,
  Target,             // bare `target` (optionally with map clauses)
  TargetParallelFor,  // `target parallel for` and teams-distribute variants
  Flush,
};

enum class OmpClauseKind {
  Private,
  FirstPrivate,
  LastPrivate,
  Shared,
  Copyprivate,
  Reduction,   // op in `arg`
  Schedule,    // kind in `arg`, chunk in `expr`
  NumThreads,  // expr
  Collapse,    // int_arg
  Nowait,
  Ordered,
  Depend,      // dependence type in `arg` (in/out/inout)
  Map,         // map type in `arg` (to/from/tofrom/alloc)
  Safelen,     // int_arg
  Default,     // kind in `arg` (shared/none)
  If,          // expr
  Device,      // expr
  Linear,
};

struct OmpClause {
  OmpClauseKind kind = OmpClauseKind::Private;
  std::vector<std::string> vars;  // variable list, if any
  std::string arg;                // textual argument (reduction op, ...)
  ExprPtr expr;                   // expression argument (chunk size, ...)
  std::int64_t int_arg = 0;       // integral argument (collapse/safelen)
};

enum class OmpAtomicKind { Update, Read, Write, Capture };

struct OmpDirective {
  OmpDirectiveKind kind = OmpDirectiveKind::Parallel;
  std::vector<OmpClause> clauses;
  std::string critical_name;  // for `critical (name)`
  OmpAtomicKind atomic_kind = OmpAtomicKind::Update;
  SourceLoc loc;

  [[nodiscard]] const OmpClause* find_clause(OmpClauseKind k) const noexcept;
  [[nodiscard]] std::vector<const OmpClause*> find_clauses(
      OmpClauseKind k) const;
  [[nodiscard]] bool has_clause(OmpClauseKind k) const noexcept {
    return find_clause(k) != nullptr;
  }

  /// True for directives that fork a thread team.
  [[nodiscard]] bool forks_team() const noexcept;
  /// True for directives that distribute loop iterations across threads.
  [[nodiscard]] bool is_worksharing_loop() const noexcept;
};

[[nodiscard]] std::string omp_directive_kind_name(OmpDirectiveKind k);

// ---------------------------------------------------------------------------
// Statements and declarations

enum class StmtKind {
  Decl,
  Expr,
  Compound,
  If,
  For,
  While,
  Do,
  Return,
  Break,
  Continue,
  Null,
  Omp,
};

struct Stmt {
  explicit Stmt(StmtKind k) : kind(k) {}
  virtual ~Stmt() = default;
  Stmt(const Stmt&) = delete;
  Stmt& operator=(const Stmt&) = delete;

  StmtKind kind;
  SourceLoc loc;
};

using StmtPtr = std::unique_ptr<Stmt>;

struct VarDecl {
  Type type;
  std::string name;
  /// Dimension expressions for array declarators, outermost first.
  std::vector<ExprPtr> array_dims;
  ExprPtr init;
  SourceLoc loc;
  bool is_param = false;
  bool is_global = false;

  [[nodiscard]] bool is_array() const noexcept { return !array_dims.empty(); }
};

struct DeclStmt : Stmt {
  DeclStmt() : Stmt(StmtKind::Decl) {}
  static constexpr StmtKind kClass = StmtKind::Decl;
  std::vector<std::unique_ptr<VarDecl>> decls;
};

struct ExprStmt : Stmt {
  ExprStmt() : Stmt(StmtKind::Expr) {}
  static constexpr StmtKind kClass = StmtKind::Expr;
  ExprPtr expr;
};

struct CompoundStmt : Stmt {
  CompoundStmt() : Stmt(StmtKind::Compound) {}
  static constexpr StmtKind kClass = StmtKind::Compound;
  std::vector<StmtPtr> body;
};

struct IfStmt : Stmt {
  IfStmt() : Stmt(StmtKind::If) {}
  static constexpr StmtKind kClass = StmtKind::If;
  ExprPtr cond;
  StmtPtr then_branch;
  StmtPtr else_branch;  // may be null
};

struct ForStmt : Stmt {
  ForStmt() : Stmt(StmtKind::For) {}
  static constexpr StmtKind kClass = StmtKind::For;
  StmtPtr init;   // DeclStmt, ExprStmt, or Null
  ExprPtr cond;   // may be null
  ExprPtr inc;    // may be null
  StmtPtr body;
};

struct WhileStmt : Stmt {
  WhileStmt() : Stmt(StmtKind::While) {}
  static constexpr StmtKind kClass = StmtKind::While;
  ExprPtr cond;
  StmtPtr body;
};

struct DoStmt : Stmt {
  DoStmt() : Stmt(StmtKind::Do) {}
  static constexpr StmtKind kClass = StmtKind::Do;
  StmtPtr body;
  ExprPtr cond;
};

struct ReturnStmt : Stmt {
  ReturnStmt() : Stmt(StmtKind::Return) {}
  static constexpr StmtKind kClass = StmtKind::Return;
  ExprPtr value;  // may be null
};

struct BreakStmt : Stmt {
  BreakStmt() : Stmt(StmtKind::Break) {}
  static constexpr StmtKind kClass = StmtKind::Break;
};

struct ContinueStmt : Stmt {
  ContinueStmt() : Stmt(StmtKind::Continue) {}
  static constexpr StmtKind kClass = StmtKind::Continue;
};

struct NullStmt : Stmt {
  NullStmt() : Stmt(StmtKind::Null) {}
  static constexpr StmtKind kClass = StmtKind::Null;
};

struct OmpStmt : Stmt {
  OmpStmt() : Stmt(StmtKind::Omp) {}
  static constexpr StmtKind kClass = StmtKind::Omp;
  OmpDirective directive;
  /// Structured block; null for standalone directives (barrier, taskwait,
  /// flush, threadprivate).
  StmtPtr body;
};

template <typename T>
[[nodiscard]] const T* stmt_cast(const Stmt* s) noexcept {
  return (s != nullptr && s->kind == T::kClass) ? static_cast<const T*>(s)
                                                : nullptr;
}
template <typename T>
[[nodiscard]] T* stmt_cast(Stmt* s) noexcept {
  return (s != nullptr && s->kind == T::kClass) ? static_cast<T*>(s) : nullptr;
}

// ---------------------------------------------------------------------------
// Top level

struct FunctionDecl {
  Type return_type;
  std::string name;
  std::vector<std::unique_ptr<VarDecl>> params;
  std::unique_ptr<CompoundStmt> body;
  SourceLoc loc;
};

struct TranslationUnit {
  std::vector<std::unique_ptr<VarDecl>> globals;
  std::vector<std::unique_ptr<FunctionDecl>> functions;
  /// File-scope directives (e.g. `threadprivate`).
  std::vector<OmpDirective> global_directives;

  [[nodiscard]] const FunctionDecl* find_function(
      std::string_view name) const noexcept;
};

/// A parsed program: the original text, its comment-stripped form, and the
/// AST built from the stripped form.
struct Program {
  std::string original;
  StripResult strip;
  std::unique_ptr<TranslationUnit> unit;

  [[nodiscard]] const std::string& trimmed() const noexcept {
    return strip.trimmed;
  }
};

}  // namespace drbml::minic
