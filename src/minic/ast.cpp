#include "minic/ast.hpp"

namespace drbml::minic {

std::string type_to_string(const Type& t) {
  std::string out;
  if (t.is_const) out += "const ";
  if (t.is_unsigned) out += "unsigned ";
  switch (t.kind) {
    case TypeKind::Void: out += "void"; break;
    case TypeKind::Bool: out += "bool"; break;
    case TypeKind::Char: out += "char"; break;
    case TypeKind::Short: out += "short"; break;
    case TypeKind::Int: out += "int"; break;
    case TypeKind::Long: out += "long"; break;
    case TypeKind::Float: out += "float"; break;
    case TypeKind::Double: out += "double"; break;
  }
  for (int i = 0; i < t.pointer_depth; ++i) out += '*';
  return out;
}

const OmpClause* OmpDirective::find_clause(OmpClauseKind k) const noexcept {
  for (const auto& c : clauses) {
    if (c.kind == k) return &c;
  }
  return nullptr;
}

std::vector<const OmpClause*> OmpDirective::find_clauses(
    OmpClauseKind k) const {
  std::vector<const OmpClause*> out;
  for (const auto& c : clauses) {
    if (c.kind == k) out.push_back(&c);
  }
  return out;
}

bool OmpDirective::forks_team() const noexcept {
  switch (kind) {
    case OmpDirectiveKind::Parallel:
    case OmpDirectiveKind::ParallelFor:
    case OmpDirectiveKind::ParallelForSimd:
    case OmpDirectiveKind::ParallelSections:
    case OmpDirectiveKind::TargetParallelFor:
      return true;
    default:
      return false;
  }
}

bool OmpDirective::is_worksharing_loop() const noexcept {
  switch (kind) {
    case OmpDirectiveKind::For:
    case OmpDirectiveKind::ParallelFor:
    case OmpDirectiveKind::ForSimd:
    case OmpDirectiveKind::ParallelForSimd:
    case OmpDirectiveKind::TargetParallelFor:
      return true;
    default:
      return false;
  }
}

std::string omp_directive_kind_name(OmpDirectiveKind k) {
  switch (k) {
    case OmpDirectiveKind::Parallel: return "parallel";
    case OmpDirectiveKind::For: return "for";
    case OmpDirectiveKind::ParallelFor: return "parallel for";
    case OmpDirectiveKind::Simd: return "simd";
    case OmpDirectiveKind::ForSimd: return "for simd";
    case OmpDirectiveKind::ParallelForSimd: return "parallel for simd";
    case OmpDirectiveKind::Critical: return "critical";
    case OmpDirectiveKind::Atomic: return "atomic";
    case OmpDirectiveKind::Barrier: return "barrier";
    case OmpDirectiveKind::Single: return "single";
    case OmpDirectiveKind::Master: return "master";
    case OmpDirectiveKind::Sections: return "sections";
    case OmpDirectiveKind::ParallelSections: return "parallel sections";
    case OmpDirectiveKind::Section: return "section";
    case OmpDirectiveKind::Task: return "task";
    case OmpDirectiveKind::Taskwait: return "taskwait";
    case OmpDirectiveKind::Ordered: return "ordered";
    case OmpDirectiveKind::Threadprivate: return "threadprivate";
    case OmpDirectiveKind::Target: return "target";
    case OmpDirectiveKind::TargetParallelFor: return "target parallel for";
    case OmpDirectiveKind::Flush: return "flush";
  }
  return "?";
}

const FunctionDecl* TranslationUnit::find_function(
    std::string_view name) const noexcept {
  for (const auto& f : functions) {
    if (f->name == name) return f.get();
  }
  return nullptr;
}

}  // namespace drbml::minic
