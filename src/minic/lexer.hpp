// Lexer for the Mini-C subset with OpenMP pragma support.
//
// `#include` lines are skipped (the corpus only uses the hosted headers the
// interpreter models as builtins). `#pragma` lines become single Pragma
// tokens whose text is parsed by the OpenMP clause parser. Line
// continuations (backslash-newline) inside pragmas are honoured.
#pragma once

#include <string_view>
#include <vector>

#include "minic/token.hpp"

namespace drbml::minic {

/// Tokenizes the whole input. Throws ParseError on malformed input.
[[nodiscard]] std::vector<Token> lex(std::string_view source);

/// True if `word` is one of the Mini-C keywords.
[[nodiscard]] bool is_keyword_word(std::string_view word) noexcept;

}  // namespace drbml::minic
