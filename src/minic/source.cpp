#include "minic/source.hpp"

#include <cctype>

namespace drbml::minic {

int StripResult::to_trimmed_line(int original_line) const noexcept {
  if (original_line < 1 ||
      original_line > static_cast<int>(line_map.size())) {
    return 0;
  }
  return line_map[static_cast<std::size_t>(original_line) - 1];
}

namespace {

bool line_is_blank(std::string_view line) noexcept {
  for (char c : line) {
    if (std::isspace(static_cast<unsigned char>(c)) == 0) return false;
  }
  return true;
}

/// Replaces comments with spaces (preserving newlines inside block
/// comments) so that line/column structure survives for the second pass.
std::string blank_comments(std::string_view src) {
  std::string out;
  out.reserve(src.size());
  enum class State { Code, Slash, Line, Block, BlockStar, Str, StrEsc, Chr, ChrEsc };
  State st = State::Code;
  for (char c : src) {
    switch (st) {
      case State::Code:
        if (c == '/') {
          st = State::Slash;
        } else {
          if (c == '"') st = State::Str;
          if (c == '\'') st = State::Chr;
          out.push_back(c);
        }
        break;
      case State::Slash:
        if (c == '/') {
          out += "  ";
          st = State::Line;
        } else if (c == '*') {
          out += "  ";
          st = State::Block;
        } else {
          out.push_back('/');
          out.push_back(c);
          if (c == '"') st = State::Str;
          else if (c == '\'') st = State::Chr;
          else st = State::Code;
        }
        break;
      case State::Line:
        if (c == '\n') {
          out.push_back('\n');
          st = State::Code;
        } else {
          out.push_back(' ');
        }
        break;
      case State::Block:
        if (c == '*') {
          st = State::BlockStar;
          out.push_back(' ');
        } else {
          out.push_back(c == '\n' ? '\n' : ' ');
        }
        break;
      case State::BlockStar:
        if (c == '/') {
          out.push_back(' ');
          st = State::Code;
        } else if (c == '*') {
          out.push_back(' ');
        } else {
          out.push_back(c == '\n' ? '\n' : ' ');
          st = State::Block;
        }
        break;
      case State::Str:
        out.push_back(c);
        if (c == '\\') st = State::StrEsc;
        else if (c == '"') st = State::Code;
        break;
      case State::StrEsc:
        out.push_back(c);
        st = State::Str;
        break;
      case State::Chr:
        out.push_back(c);
        if (c == '\\') st = State::ChrEsc;
        else if (c == '\'') st = State::Code;
        break;
      case State::ChrEsc:
        out.push_back(c);
        st = State::Chr;
        break;
    }
  }
  if (st == State::Slash) out.push_back('/');
  return out;
}

std::vector<std::string> split_keep_lines(std::string_view s) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\n') {
      lines.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  if (start < s.size()) lines.emplace_back(s.substr(start));
  return lines;
}

/// Strips trailing whitespace (introduced by comment blanking).
std::string rstrip(std::string s) {
  while (!s.empty() &&
         std::isspace(static_cast<unsigned char>(s.back())) != 0) {
    s.pop_back();
  }
  return s;
}

}  // namespace

StripResult strip_comments(std::string_view source) {
  const std::string blanked = blank_comments(source);
  const std::vector<std::string> orig_lines = split_keep_lines(source);
  const std::vector<std::string> lines = split_keep_lines(blanked);

  StripResult result;
  result.line_map.assign(orig_lines.size(), 0);
  int next_line = 1;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const bool was_blank = line_is_blank(orig_lines[i]);
    if (line_is_blank(lines[i]) && !was_blank) {
      continue;  // line held only a comment: drop it
    }
    if (line_is_blank(lines[i]) && was_blank) {
      continue;  // originally blank lines are dropped too
    }
    result.trimmed += rstrip(lines[i]);
    result.trimmed += '\n';
    result.line_map[i] = next_line++;
  }
  return result;
}

std::vector<std::string> extract_comments(std::string_view src) {
  std::vector<std::string> comments;
  enum class State { Code, Slash, Line, Block, BlockStar, Str, StrEsc, Chr, ChrEsc };
  State st = State::Code;
  std::string current;
  for (char c : src) {
    switch (st) {
      case State::Code:
        if (c == '/') st = State::Slash;
        else if (c == '"') st = State::Str;
        else if (c == '\'') st = State::Chr;
        break;
      case State::Slash:
        if (c == '/') {
          st = State::Line;
          current.clear();
        } else if (c == '*') {
          st = State::Block;
          current.clear();
        } else if (c == '"') {
          st = State::Str;
        } else if (c == '\'') {
          st = State::Chr;
        } else if (c != '/') {
          st = State::Code;
        }
        break;
      case State::Line:
        if (c == '\n') {
          comments.push_back(current);
          st = State::Code;
        } else {
          current.push_back(c);
        }
        break;
      case State::Block:
        if (c == '*') st = State::BlockStar;
        else current.push_back(c);
        break;
      case State::BlockStar:
        if (c == '/') {
          comments.push_back(current);
          st = State::Code;
        } else if (c == '*') {
          current.push_back('*');
        } else {
          current.push_back('*');
          current.push_back(c);
          st = State::Block;
        }
        break;
      case State::Str:
        if (c == '\\') st = State::StrEsc;
        else if (c == '"') st = State::Code;
        break;
      case State::StrEsc: st = State::Str; break;
      case State::Chr:
        if (c == '\\') st = State::ChrEsc;
        else if (c == '\'') st = State::Code;
        break;
      case State::ChrEsc: st = State::Chr; break;
    }
  }
  if (st == State::Line) comments.push_back(current);
  return comments;
}

}  // namespace drbml::minic
