#include "minic/parser.hpp"

#include <utility>

#include "minic/lexer.hpp"
#include "support/error.hpp"

namespace drbml::minic {

namespace {

// ---------------------------------------------------------------------------
// OpenMP pragma parsing
//
// Pragma text is re-lexed with the main lexer and parsed by a dedicated
// clause parser. Variable lists may contain array sections (`a[i]`), which
// are captured textually.

class OmpParser {
 public:
  OmpParser(std::vector<Token> tokens, SourceLoc loc)
      : tokens_(std::move(tokens)), loc_(loc) {}

  OmpDirective parse() {
    OmpDirective dir;
    dir.loc = loc_;
    expect_word("omp");
    dir.kind = parse_directive_kind();
    parse_directive_suffix(dir);
    while (!at_end()) {
      dir.clauses.push_back(parse_clause());
    }
    return dir;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    throw ParseError("in omp pragma: " + msg, loc_.line, loc_.col);
  }

  [[nodiscard]] const Token& peek(std::size_t ahead = 0) const {
    const std::size_t i = pos_ + ahead;
    if (i < tokens_.size()) return tokens_[i];
    return tokens_.back();  // End token
  }
  const Token& get() {
    const Token& t = peek();
    if (!t.is(TokenKind::End)) ++pos_;
    return t;
  }
  [[nodiscard]] bool at_end() const { return peek().is(TokenKind::End); }

  [[nodiscard]] bool peek_word(const char* w, std::size_t ahead = 0) const {
    const Token& t = peek(ahead);
    return (t.is(TokenKind::Identifier) || t.is(TokenKind::Keyword)) &&
           t.text == w;
  }
  bool accept_word(const char* w) {
    if (peek_word(w)) {
      ++pos_;
      return true;
    }
    return false;
  }
  void expect_word(const char* w) {
    if (!accept_word(w)) fail(std::string("expected '") + w + "'");
  }
  void expect_punct(const char* p) {
    if (!peek().is_punct(p)) fail(std::string("expected '") + p + "'");
    ++pos_;
  }

  OmpDirectiveKind parse_directive_kind() {
    if (accept_word("parallel")) {
      if (accept_word("for")) {
        if (accept_word("simd")) return OmpDirectiveKind::ParallelForSimd;
        return OmpDirectiveKind::ParallelFor;
      }
      if (accept_word("sections")) return OmpDirectiveKind::ParallelSections;
      return OmpDirectiveKind::Parallel;
    }
    if (accept_word("for")) {
      if (accept_word("simd")) return OmpDirectiveKind::ForSimd;
      return OmpDirectiveKind::For;
    }
    if (accept_word("simd")) return OmpDirectiveKind::Simd;
    if (accept_word("critical")) return OmpDirectiveKind::Critical;
    if (accept_word("atomic")) return OmpDirectiveKind::Atomic;
    if (accept_word("barrier")) return OmpDirectiveKind::Barrier;
    if (accept_word("single")) return OmpDirectiveKind::Single;
    if (accept_word("master")) return OmpDirectiveKind::Master;
    if (accept_word("masked")) return OmpDirectiveKind::Master;
    if (accept_word("sections")) return OmpDirectiveKind::Sections;
    if (accept_word("section")) return OmpDirectiveKind::Section;
    if (accept_word("taskwait")) return OmpDirectiveKind::Taskwait;
    if (accept_word("task")) return OmpDirectiveKind::Task;
    if (accept_word("ordered")) return OmpDirectiveKind::Ordered;
    if (accept_word("threadprivate")) return OmpDirectiveKind::Threadprivate;
    if (accept_word("flush")) return OmpDirectiveKind::Flush;
    if (accept_word("target")) {
      // Accept `target`, `target parallel for`, and
      // `target teams distribute parallel for [simd]`.
      bool saw_loop = false;
      accept_word("teams");
      accept_word("distribute");
      if (accept_word("parallel")) {
        expect_word("for");
        accept_word("simd");
        saw_loop = true;
      } else if (accept_word("map")) {
        // `target map(...)`: rewind so the clause loop sees `map`.
        --pos_;
      }
      return saw_loop ? OmpDirectiveKind::TargetParallelFor
                      : OmpDirectiveKind::Target;
    }
    fail("unknown directive '" + peek().text + "'");
  }

  void parse_directive_suffix(OmpDirective& dir) {
    if (dir.kind == OmpDirectiveKind::Critical && peek().is_punct("(")) {
      get();
      if (!peek().is(TokenKind::Identifier)) fail("expected critical name");
      dir.critical_name = get().text;
      expect_punct(")");
    }
    if (dir.kind == OmpDirectiveKind::Atomic) {
      if (accept_word("read")) dir.atomic_kind = OmpAtomicKind::Read;
      else if (accept_word("write")) dir.atomic_kind = OmpAtomicKind::Write;
      else if (accept_word("update")) dir.atomic_kind = OmpAtomicKind::Update;
      else if (accept_word("capture")) dir.atomic_kind = OmpAtomicKind::Capture;
    }
    if (dir.kind == OmpDirectiveKind::Threadprivate ||
        dir.kind == OmpDirectiveKind::Flush) {
      if (peek().is_punct("(")) {
        OmpClause c;
        c.kind = OmpClauseKind::Shared;  // variable-list carrier
        get();
        c.vars = parse_var_list();
        expect_punct(")");
        dir.clauses.push_back(std::move(c));
      }
    }
  }

  /// Parses a comma-separated variable list up to the closing ')'. Items
  /// may be plain identifiers or textual array sections (`a[i]`, `b[0:n]`).
  std::vector<std::string> parse_var_list() {
    std::vector<std::string> vars;
    std::string current;
    int bracket_depth = 0;
    for (;;) {
      const Token& t = peek();
      if (t.is(TokenKind::End)) fail("unterminated variable list");
      if (t.is_punct(")") && bracket_depth == 0) break;
      if (t.is_punct(",") && bracket_depth == 0) {
        get();
        if (!current.empty()) vars.push_back(current);
        current.clear();
        continue;
      }
      if (t.is_punct("[")) ++bracket_depth;
      if (t.is_punct("]")) --bracket_depth;
      current += get().text;
    }
    if (!current.empty()) vars.push_back(current);
    return vars;
  }

  /// Captures the raw token texts of a parenthesized expression argument.
  std::string capture_expr_text() {
    std::string out;
    int depth = 0;
    for (;;) {
      const Token& t = peek();
      if (t.is(TokenKind::End)) fail("unterminated clause argument");
      if (t.is_punct(")") && depth == 0) break;
      if (t.is_punct("(")) ++depth;
      if (t.is_punct(")")) --depth;
      if (!out.empty()) out += ' ';
      out += get().text;
    }
    return out;
  }

  OmpClause parse_clause() {
    // Clause separators (commas between clauses) are permitted.
    while (peek().is_punct(",")) get();
    const Token& t = peek();
    if (!(t.is(TokenKind::Identifier) || t.is(TokenKind::Keyword))) {
      fail("expected clause, got '" + t.text + "'");
    }
    const std::string name = get().text;
    OmpClause c;

    auto var_list_clause = [&](OmpClauseKind kind) {
      c.kind = kind;
      expect_punct("(");
      c.vars = parse_var_list();
      expect_punct(")");
    };

    if (name == "private") { var_list_clause(OmpClauseKind::Private); return c; }
    if (name == "firstprivate") { var_list_clause(OmpClauseKind::FirstPrivate); return c; }
    if (name == "lastprivate") { var_list_clause(OmpClauseKind::LastPrivate); return c; }
    if (name == "shared") { var_list_clause(OmpClauseKind::Shared); return c; }
    if (name == "copyprivate") { var_list_clause(OmpClauseKind::Copyprivate); return c; }
    if (name == "linear") { var_list_clause(OmpClauseKind::Linear); return c; }
    if (name == "nowait") { c.kind = OmpClauseKind::Nowait; return c; }
    if (name == "ordered") {
      c.kind = OmpClauseKind::Ordered;
      if (peek().is_punct("(")) {
        get();
        if (peek().is(TokenKind::IntLiteral)) c.int_arg = get().int_value;
        expect_punct(")");
      }
      return c;
    }
    if (name == "reduction") {
      c.kind = OmpClauseKind::Reduction;
      expect_punct("(");
      // Operator may span several punct tokens (&&, ||) or be an identifier
      // (min/max).
      std::string op;
      while (!peek().is_punct(":")) {
        if (peek().is(TokenKind::End)) fail("unterminated reduction clause");
        op += get().text;
      }
      expect_punct(":");
      c.arg = op;
      c.vars = parse_var_list();
      expect_punct(")");
      return c;
    }
    if (name == "schedule") {
      c.kind = OmpClauseKind::Schedule;
      expect_punct("(");
      if (!(peek().is(TokenKind::Identifier) || peek().is(TokenKind::Keyword))) {
        fail("expected schedule kind");
      }
      c.arg = get().text;
      if (peek().is_punct(",")) {
        get();
        c.expr = parse_embedded_expr();
      }
      expect_punct(")");
      return c;
    }
    if (name == "collapse" || name == "safelen" || name == "simdlen") {
      c.kind = name == "collapse" ? OmpClauseKind::Collapse
                                  : OmpClauseKind::Safelen;
      expect_punct("(");
      if (!peek().is(TokenKind::IntLiteral)) fail("expected integer");
      c.int_arg = get().int_value;
      expect_punct(")");
      return c;
    }
    if (name == "num_threads" || name == "if" || name == "device" ||
        name == "final" || name == "priority") {
      c.kind = name == "num_threads" ? OmpClauseKind::NumThreads
               : name == "device"    ? OmpClauseKind::Device
                                     : OmpClauseKind::If;
      expect_punct("(");
      c.expr = parse_embedded_expr();
      expect_punct(")");
      return c;
    }
    if (name == "depend") {
      c.kind = OmpClauseKind::Depend;
      expect_punct("(");
      if (!(peek().is(TokenKind::Identifier) || peek().is(TokenKind::Keyword))) {
        fail("expected dependence type");
      }
      c.arg = get().text;
      expect_punct(":");
      c.vars = parse_var_list();
      expect_punct(")");
      return c;
    }
    if (name == "map") {
      c.kind = OmpClauseKind::Map;
      expect_punct("(");
      // Optional map-type prefix.
      if ((peek().is(TokenKind::Identifier)) && peek(1).is_punct(":")) {
        c.arg = get().text;
        get();  // ':'
      }
      c.vars = parse_var_list();
      expect_punct(")");
      return c;
    }
    if (name == "default") {
      c.kind = OmpClauseKind::Default;
      expect_punct("(");
      if (!(peek().is(TokenKind::Identifier) || peek().is(TokenKind::Keyword))) {
        fail("expected default kind");
      }
      c.arg = get().text;
      expect_punct(")");
      return c;
    }
    fail("unknown clause '" + name + "'");
  }

  /// Parses a (simple) expression argument inside a clause. Only literals,
  /// identifiers, and binary arithmetic are needed in practice; the
  /// captured text is wrapped in an Ident when it is a lone name, an IntLit
  /// when a lone literal, and otherwise kept as a textual Ident.
  ExprPtr parse_embedded_expr() {
    const std::string text = capture_expr_text();
    if (text.empty()) fail("empty clause expression");
    // Fast path: single integer literal.
    bool all_digits = true;
    for (char ch : text) {
      if (ch < '0' || ch > '9') {
        all_digits = false;
        break;
      }
    }
    if (all_digits) {
      auto lit = std::make_unique<IntLit>();
      try {
        lit->value = std::stoll(text);
      } catch (const std::out_of_range&) {
        fail("clause literal out of range: " + text);
      }
      lit->loc = loc_;
      return lit;
    }
    auto id = std::make_unique<Ident>();
    id->name = text;
    id->loc = loc_;
    return id;
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  SourceLoc loc_;
};

// ---------------------------------------------------------------------------
// C parser

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  std::unique_ptr<TranslationUnit> parse() {
    auto tu = std::make_unique<TranslationUnit>();
    while (!at_end()) {
      if (peek().is(TokenKind::Pragma)) {
        tu->global_directives.push_back(
            parse_omp_pragma(peek().text, peek().loc));
        get();
        continue;
      }
      parse_top_level(*tu);
    }
    return tu;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    const Token& t = peek();
    throw ParseError(msg + " (got '" + t.text + "')", t.loc.line, t.loc.col);
  }

  [[nodiscard]] const Token& peek(std::size_t ahead = 0) const {
    const std::size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& get() {
    const Token& t = peek();
    if (!t.is(TokenKind::End)) ++pos_;
    return t;
  }
  [[nodiscard]] bool at_end() const { return peek().is(TokenKind::End); }

  bool accept_punct(const char* p) {
    if (peek().is_punct(p)) {
      ++pos_;
      return true;
    }
    return false;
  }
  void expect_punct(const char* p) {
    if (!accept_punct(p)) fail(std::string("expected '") + p + "'");
  }
  bool accept_keyword(const char* kw) {
    if (peek().is_keyword(kw)) {
      ++pos_;
      return true;
    }
    return false;
  }

  // -- types ----------------------------------------------------------------

  /// Named opaque types treated as scalars (OpenMP lock types, size_t).
  [[nodiscard]] static bool is_named_type(const Token& t) {
    return t.is(TokenKind::Identifier) &&
           (t.text == "omp_lock_t" || t.text == "omp_nest_lock_t" ||
            t.text == "size_t");
  }

  [[nodiscard]] bool peek_is_type_start(std::size_t ahead = 0) const {
    const Token& t = peek(ahead);
    if (is_named_type(t)) return true;
    if (!t.is(TokenKind::Keyword)) return false;
    return t.text == "void" || t.text == "bool" || t.text == "char" ||
           t.text == "short" || t.text == "int" || t.text == "long" ||
           t.text == "float" || t.text == "double" || t.text == "signed" ||
           t.text == "unsigned" || t.text == "const" || t.text == "static" ||
           t.text == "volatile" || t.text == "extern";
  }

  Type parse_type_specifiers() {
    Type ty;
    bool have_base = false;
    for (;;) {
      const Token& t = peek();
      if (is_named_type(t) && !have_base) {
        // Opaque named types are modelled as long integers.
        ty.kind = TypeKind::Long;
        get();
        have_base = true;
        continue;
      }
      if (!t.is(TokenKind::Keyword)) break;
      if (t.text == "const" || t.text == "volatile" || t.text == "static" ||
          t.text == "extern") {
        if (t.text == "const") ty.is_const = true;
        get();
        continue;
      }
      if (t.text == "unsigned") {
        ty.is_unsigned = true;
        get();
        have_base = true;  // `unsigned` alone means unsigned int
        continue;
      }
      if (t.text == "signed") {
        get();
        have_base = true;
        continue;
      }
      if (t.text == "void") { ty.kind = TypeKind::Void; get(); have_base = true; continue; }
      if (t.text == "bool") { ty.kind = TypeKind::Bool; get(); have_base = true; continue; }
      if (t.text == "char") { ty.kind = TypeKind::Char; get(); have_base = true; continue; }
      if (t.text == "short") { ty.kind = TypeKind::Short; get(); have_base = true; continue; }
      if (t.text == "int") {
        if (ty.kind != TypeKind::Long && ty.kind != TypeKind::Short) {
          ty.kind = TypeKind::Int;
        }
        get();
        have_base = true;
        continue;
      }
      if (t.text == "long") {
        ty.kind = TypeKind::Long;
        get();
        have_base = true;
        // `long long` / `long double`
        if (peek().is_keyword("long")) get();
        if (peek().is_keyword("double")) {
          ty.kind = TypeKind::Double;
          get();
        }
        continue;
      }
      if (t.text == "float") { ty.kind = TypeKind::Float; get(); have_base = true; continue; }
      if (t.text == "double") { ty.kind = TypeKind::Double; get(); have_base = true; continue; }
      break;
    }
    if (!have_base) fail("expected type");
    return ty;
  }

  // -- top level --------------------------------------------------------------

  void parse_top_level(TranslationUnit& tu) {
    if (!peek_is_type_start()) fail("expected declaration");
    Type base = parse_type_specifiers();

    // First declarator decides function vs. variables.
    Type ty = base;
    while (accept_punct("*")) ++ty.pointer_depth;
    if (!peek().is(TokenKind::Identifier)) fail("expected identifier");
    const Token name_tok = get();

    if (peek().is_punct("(")) {
      tu.functions.push_back(parse_function_rest(ty, name_tok));
      return;
    }

    // Global variable declaration(s).
    auto first = finish_declarator(ty, name_tok);
    first->is_global = true;
    tu.globals.push_back(std::move(first));
    while (accept_punct(",")) {
      Type ty2 = base;
      while (accept_punct("*")) ++ty2.pointer_depth;
      if (!peek().is(TokenKind::Identifier)) fail("expected identifier");
      const Token name2 = get();
      auto d = finish_declarator(ty2, name2);
      d->is_global = true;
      tu.globals.push_back(std::move(d));
    }
    expect_punct(";");
  }

  std::unique_ptr<VarDecl> finish_declarator(Type ty, const Token& name_tok) {
    auto d = std::make_unique<VarDecl>();
    d->type = ty;
    d->name = name_tok.text;
    d->loc = name_tok.loc;
    while (accept_punct("[")) {
      if (peek().is_punct("]")) {
        d->array_dims.push_back(nullptr);  // unsized: `char* argv[]`
      } else {
        d->array_dims.push_back(parse_assign_expr());
      }
      expect_punct("]");
    }
    if (accept_punct("=")) {
      if (peek().is_punct("{")) {
        d->init = parse_initializer_list();
      } else {
        d->init = parse_assign_expr();
      }
    }
    return d;
  }

  /// Brace initializers are represented as a Call named "__init_list".
  ExprPtr parse_initializer_list() {
    auto call = std::make_unique<Call>();
    call->callee = "__init_list";
    call->loc = peek().loc;
    expect_punct("{");
    if (!peek().is_punct("}")) {
      for (;;) {
        if (peek().is_punct("{")) {
          call->args.push_back(parse_initializer_list());
        } else {
          call->args.push_back(parse_assign_expr());
        }
        if (!accept_punct(",")) break;
        if (peek().is_punct("}")) break;  // trailing comma
      }
    }
    expect_punct("}");
    return call;
  }

  std::unique_ptr<FunctionDecl> parse_function_rest(Type ret,
                                                    const Token& name_tok) {
    auto fn = std::make_unique<FunctionDecl>();
    fn->return_type = ret;
    fn->name = name_tok.text;
    fn->loc = name_tok.loc;
    expect_punct("(");
    if (!peek().is_punct(")")) {
      if (peek().is_keyword("void") && peek(1).is_punct(")")) {
        get();
      } else {
        for (;;) {
          Type pty = parse_type_specifiers();
          while (accept_punct("*")) ++pty.pointer_depth;
          if (!peek().is(TokenKind::Identifier)) fail("expected parameter name");
          const Token pname = get();
          auto p = finish_declarator(pty, pname);
          p->is_param = true;
          // Array parameters decay to pointers.
          if (p->is_array()) {
            p->array_dims.clear();
            ++p->type.pointer_depth;
          }
          fn->params.push_back(std::move(p));
          if (!accept_punct(",")) break;
        }
      }
    }
    expect_punct(")");
    if (accept_punct(";")) {
      fn->body = nullptr;  // prototype
      return fn;
    }
    fn->body = parse_compound();
    return fn;
  }

  // -- statements -------------------------------------------------------------

  std::unique_ptr<CompoundStmt> parse_compound() {
    auto block = std::make_unique<CompoundStmt>();
    block->loc = peek().loc;
    expect_punct("{");
    while (!peek().is_punct("}")) {
      if (at_end()) fail("unterminated block");
      block->body.push_back(parse_statement());
    }
    expect_punct("}");
    return block;
  }

  StmtPtr parse_statement() {
    const Token& t = peek();

    if (t.is(TokenKind::Pragma)) return parse_omp_statement();
    if (t.is_punct("{")) return parse_compound();
    if (t.is_punct(";")) {
      auto s = std::make_unique<NullStmt>();
      s->loc = t.loc;
      get();
      return s;
    }
    if (t.is_keyword("if")) return parse_if();
    if (t.is_keyword("for")) return parse_for();
    if (t.is_keyword("while")) return parse_while();
    if (t.is_keyword("do")) return parse_do();
    if (t.is_keyword("return")) {
      auto s = std::make_unique<ReturnStmt>();
      s->loc = t.loc;
      get();
      if (!peek().is_punct(";")) s->value = parse_expr();
      expect_punct(";");
      return s;
    }
    if (t.is_keyword("break")) {
      auto s = std::make_unique<BreakStmt>();
      s->loc = t.loc;
      get();
      expect_punct(";");
      return s;
    }
    if (t.is_keyword("continue")) {
      auto s = std::make_unique<ContinueStmt>();
      s->loc = t.loc;
      get();
      expect_punct(";");
      return s;
    }
    if (peek_is_type_start()) return parse_decl_stmt();

    auto s = std::make_unique<ExprStmt>();
    s->loc = t.loc;
    s->expr = parse_expr();
    expect_punct(";");
    return s;
  }

  StmtPtr parse_decl_stmt() {
    auto s = std::make_unique<DeclStmt>();
    s->loc = peek().loc;
    Type base = parse_type_specifiers();
    for (;;) {
      Type ty = base;
      while (accept_punct("*")) ++ty.pointer_depth;
      if (!peek().is(TokenKind::Identifier)) fail("expected identifier");
      const Token name_tok = get();
      s->decls.push_back(finish_declarator(ty, name_tok));
      if (!accept_punct(",")) break;
    }
    expect_punct(";");
    return s;
  }

  StmtPtr parse_if() {
    auto s = std::make_unique<IfStmt>();
    s->loc = peek().loc;
    get();  // 'if'
    expect_punct("(");
    s->cond = parse_expr();
    expect_punct(")");
    s->then_branch = parse_statement();
    if (accept_keyword("else")) s->else_branch = parse_statement();
    return s;
  }

  StmtPtr parse_for() {
    auto s = std::make_unique<ForStmt>();
    s->loc = peek().loc;
    get();  // 'for'
    expect_punct("(");
    if (peek().is_punct(";")) {
      auto n = std::make_unique<NullStmt>();
      n->loc = peek().loc;
      s->init = std::move(n);
      get();
    } else if (peek_is_type_start()) {
      s->init = parse_decl_stmt();
    } else {
      auto e = std::make_unique<ExprStmt>();
      e->loc = peek().loc;
      e->expr = parse_expr();
      s->init = std::move(e);
      expect_punct(";");
    }
    if (!peek().is_punct(";")) s->cond = parse_expr();
    expect_punct(";");
    if (!peek().is_punct(")")) s->inc = parse_expr();
    expect_punct(")");
    s->body = parse_statement();
    return s;
  }

  StmtPtr parse_while() {
    auto s = std::make_unique<WhileStmt>();
    s->loc = peek().loc;
    get();
    expect_punct("(");
    s->cond = parse_expr();
    expect_punct(")");
    s->body = parse_statement();
    return s;
  }

  StmtPtr parse_do() {
    auto s = std::make_unique<DoStmt>();
    s->loc = peek().loc;
    get();
    s->body = parse_statement();
    if (!accept_keyword("while")) fail("expected 'while'");
    expect_punct("(");
    s->cond = parse_expr();
    expect_punct(")");
    expect_punct(";");
    return s;
  }

  StmtPtr parse_omp_statement() {
    const Token pragma = get();
    auto s = std::make_unique<OmpStmt>();
    s->loc = pragma.loc;
    s->directive = parse_omp_pragma(pragma.text, pragma.loc);
    switch (s->directive.kind) {
      case OmpDirectiveKind::Barrier:
      case OmpDirectiveKind::Taskwait:
      case OmpDirectiveKind::Flush:
      case OmpDirectiveKind::Threadprivate:
        s->body = nullptr;
        break;
      default:
        s->body = parse_statement();
        break;
    }
    return s;
  }

  // -- expressions ------------------------------------------------------------

  ExprPtr parse_expr() {
    ExprPtr e = parse_assign_expr();
    while (peek().is_punct(",")) {
      auto b = std::make_unique<Binary>();
      b->loc = peek().loc;
      get();
      b->op = BinaryOp::Comma;
      b->lhs = std::move(e);
      b->rhs = parse_assign_expr();
      e = std::move(b);
    }
    return e;
  }

  ExprPtr parse_assign_expr() {
    ExprPtr lhs = parse_conditional();
    const Token& t = peek();
    AssignOp op;
    if (t.is_punct("=")) op = AssignOp::Assign;
    else if (t.is_punct("+=")) op = AssignOp::Add;
    else if (t.is_punct("-=")) op = AssignOp::Sub;
    else if (t.is_punct("*=")) op = AssignOp::Mul;
    else if (t.is_punct("/=")) op = AssignOp::Div;
    else if (t.is_punct("%=")) op = AssignOp::Mod;
    else if (t.is_punct("<<=")) op = AssignOp::Shl;
    else if (t.is_punct(">>=")) op = AssignOp::Shr;
    else if (t.is_punct("&=")) op = AssignOp::And;
    else if (t.is_punct("|=")) op = AssignOp::Or;
    else if (t.is_punct("^=")) op = AssignOp::Xor;
    else return lhs;

    auto a = std::make_unique<Assign>();
    a->loc = t.loc;
    get();
    a->op = op;
    a->target = std::move(lhs);
    a->value = parse_assign_expr();
    return a;
  }

  ExprPtr parse_conditional() {
    ExprPtr cond = parse_binary(0);
    if (!peek().is_punct("?")) return cond;
    auto c = std::make_unique<Conditional>();
    c->loc = peek().loc;
    get();
    c->cond = std::move(cond);
    c->then_expr = parse_expr();
    expect_punct(":");
    c->else_expr = parse_assign_expr();
    return c;
  }

  struct OpInfo {
    const char* spelling;
    BinaryOp op;
    int prec;
  };

  [[nodiscard]] static const OpInfo* binary_op_info(const Token& t) noexcept {
    static constexpr OpInfo kOps[] = {
        {"||", BinaryOp::LogicalOr, 1},
        {"&&", BinaryOp::LogicalAnd, 2},
        {"|", BinaryOp::BitOr, 3},
        {"^", BinaryOp::BitXor, 4},
        {"&", BinaryOp::BitAnd, 5},
        {"==", BinaryOp::Eq, 6},
        {"!=", BinaryOp::Ne, 6},
        {"<", BinaryOp::Lt, 7},
        {">", BinaryOp::Gt, 7},
        {"<=", BinaryOp::Le, 7},
        {">=", BinaryOp::Ge, 7},
        {"<<", BinaryOp::Shl, 8},
        {">>", BinaryOp::Shr, 8},
        {"+", BinaryOp::Add, 9},
        {"-", BinaryOp::Sub, 9},
        {"*", BinaryOp::Mul, 10},
        {"/", BinaryOp::Div, 10},
        {"%", BinaryOp::Mod, 10},
    };
    if (!t.is(TokenKind::Punct)) return nullptr;
    for (const auto& info : kOps) {
      if (t.text == info.spelling) return &info;
    }
    return nullptr;
  }

  ExprPtr parse_binary(int min_prec) {
    ExprPtr lhs = parse_unary();
    for (;;) {
      const OpInfo* info = binary_op_info(peek());
      if (info == nullptr || info->prec < min_prec) return lhs;
      auto b = std::make_unique<Binary>();
      b->loc = peek().loc;
      get();
      b->op = info->op;
      b->lhs = std::move(lhs);
      b->rhs = parse_binary(info->prec + 1);
      lhs = std::move(b);
    }
  }

  ExprPtr parse_unary() {
    const Token& t = peek();
    auto make_unary = [&](UnaryOp op) {
      auto u = std::make_unique<Unary>();
      u->loc = t.loc;
      get();
      u->op = op;
      u->operand = parse_unary();
      return u;
    };
    if (t.is_punct("-")) return make_unary(UnaryOp::Neg);
    if (t.is_punct("+")) return make_unary(UnaryOp::Plus);
    if (t.is_punct("!")) return make_unary(UnaryOp::Not);
    if (t.is_punct("~")) return make_unary(UnaryOp::BitNot);
    if (t.is_punct("++")) return make_unary(UnaryOp::PreInc);
    if (t.is_punct("--")) return make_unary(UnaryOp::PreDec);
    if (t.is_punct("&")) return make_unary(UnaryOp::AddrOf);
    if (t.is_punct("*")) return make_unary(UnaryOp::Deref);
    if (t.is_keyword("sizeof")) {
      // sizeof(type) and sizeof(expr) both evaluate to a constant in our
      // subset; represent as a Call for the interpreter.
      get();
      auto call = std::make_unique<Call>();
      call->loc = t.loc;
      call->callee = "__sizeof";
      expect_punct("(");
      if (peek_is_type_start()) {
        Type ty = parse_type_specifiers();
        while (accept_punct("*")) ++ty.pointer_depth;
        auto lit = std::make_unique<StringLit>();
        lit->loc = t.loc;
        lit->value = type_to_string(ty);
        call->args.push_back(std::move(lit));
      } else {
        call->args.push_back(parse_expr());
      }
      expect_punct(")");
      return call;
    }
    // Cast: '(' type ')' unary. Unambiguous because the subset has no
    // typedefs: a type keyword after '(' can only be a cast.
    if (t.is_punct("(") && peek_is_type_start(1)) {
      auto c = std::make_unique<Cast>();
      c->loc = t.loc;
      get();
      c->type = parse_type_specifiers();
      while (accept_punct("*")) ++c->type.pointer_depth;
      // Abstract array declarator in casts is not supported.
      expect_punct(")");
      c->operand = parse_unary();
      return c;
    }
    return parse_postfix();
  }

  ExprPtr parse_postfix() {
    ExprPtr e = parse_primary();
    for (;;) {
      const Token& t = peek();
      if (t.is_punct("[")) {
        auto s = std::make_unique<Subscript>();
        s->loc = t.loc;
        get();
        s->base = std::move(e);
        s->index = parse_expr();
        expect_punct("]");
        e = std::move(s);
        continue;
      }
      if (t.is_punct("++") || t.is_punct("--")) {
        auto u = std::make_unique<Unary>();
        u->loc = t.loc;
        u->op = t.is_punct("++") ? UnaryOp::PostInc : UnaryOp::PostDec;
        get();
        u->operand = std::move(e);
        e = std::move(u);
        continue;
      }
      break;
    }
    return e;
  }

  ExprPtr parse_primary() {
    const Token& t = peek();
    switch (t.kind) {
      case TokenKind::IntLiteral: {
        auto e = std::make_unique<IntLit>();
        e->loc = t.loc;
        e->value = t.int_value;
        get();
        return e;
      }
      case TokenKind::FloatLiteral: {
        auto e = std::make_unique<FloatLit>();
        e->loc = t.loc;
        e->value = t.float_value;
        get();
        return e;
      }
      case TokenKind::StringLiteral: {
        auto e = std::make_unique<StringLit>();
        e->loc = t.loc;
        e->value = t.string_value;
        get();
        return e;
      }
      case TokenKind::CharLiteral: {
        auto e = std::make_unique<CharLit>();
        e->loc = t.loc;
        e->value = static_cast<char>(t.int_value);
        get();
        return e;
      }
      case TokenKind::Identifier: {
        const Token name = get();
        if (peek().is_punct("(")) {
          auto call = std::make_unique<Call>();
          call->loc = name.loc;
          call->callee = name.text;
          get();  // '('
          if (!peek().is_punct(")")) {
            for (;;) {
              call->args.push_back(parse_assign_expr());
              if (!accept_punct(",")) break;
            }
          }
          expect_punct(")");
          return call;
        }
        auto id = std::make_unique<Ident>();
        id->loc = name.loc;
        id->name = name.text;
        return id;
      }
      case TokenKind::Punct:
        if (t.is_punct("(")) {
          get();
          ExprPtr e = parse_expr();
          expect_punct(")");
          return e;
        }
        break;
      default:
        break;
    }
    fail("expected expression");
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

OmpDirective parse_omp_pragma(std::string_view pragma_text, SourceLoc loc) {
  std::vector<Token> toks = lex(pragma_text);
  return OmpParser(std::move(toks), loc).parse();
}

std::unique_ptr<TranslationUnit> parse_tokens(std::vector<Token> tokens) {
  return Parser(std::move(tokens)).parse();
}

Program parse_program(std::string_view source) {
  Program p;
  p.original = std::string(source);
  p.strip = strip_comments(source);
  p.unit = parse_tokens(lex(p.strip.trimmed));
  return p;
}

}  // namespace drbml::minic
