// Source text utilities: locations, comment stripping, and line maps.
//
// DRB-ML labels ("line" / "col" of race variables) refer to the code with
// all comments removed (the paper's `trimmed_code`), while DataRaceBench
// ground truth lives in header comments of the original file. StripResult
// carries the mapping between the two coordinate systems.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace drbml::minic {

/// 1-based line/column position in some source text.
struct SourceLoc {
  int line = 0;
  int col = 0;

  [[nodiscard]] bool valid() const noexcept { return line > 0; }
  friend bool operator==(const SourceLoc&, const SourceLoc&) = default;
};

/// Result of removing comments (and the lines they leave empty).
struct StripResult {
  /// Code with /*...*/ and //... comments removed and comment-only lines
  /// dropped.
  std::string trimmed;

  /// For each 1-based line of the original text, the 1-based line it maps
  /// to in `trimmed`, or 0 if the line was dropped entirely.
  std::vector<int> line_map;

  /// Maps an original-line number to the trimmed-line number (0 if dropped
  /// or out of range).
  [[nodiscard]] int to_trimmed_line(int original_line) const noexcept;
};

/// Removes C comments. String and character literals are respected (comment
/// markers inside them are kept). Lines that become entirely blank are
/// dropped; other lines keep their original column positions up to the
/// first removed region.
[[nodiscard]] StripResult strip_comments(std::string_view source);

/// Extracts every comment's text (without the comment markers), in source
/// order. Used by the dataset builder to find DRB ground-truth annotations.
[[nodiscard]] std::vector<std::string> extract_comments(std::string_view source);

}  // namespace drbml::minic
