#include "serve/server.hpp"

#include <unistd.h>

#include <cerrno>
#include <condition_variable>
#include <cstdio>
#include <filesystem>
#include <utility>

#include "eval/artifact_cache.hpp"
#include "obs/catalog.hpp"
#include "support/error.hpp"

namespace drbml::serve {

namespace {

/// Sums the probe (or compute) counters of every artifact kind; the
/// difference is the warm-hit total the stats verb and the check.sh
/// serve gate report.
std::uint64_t cache_counter_sum(bool computes) {
  static const obs::CacheKindMetrics kKinds[] = {
      {obs::kCacheTokensProbe, obs::kCacheTokensCompute},
      {obs::kCacheAstProbe, obs::kCacheAstCompute},
      {obs::kCacheDepgraphProbe, obs::kCacheDepgraphCompute},
      {obs::kCacheStaticProbe, obs::kCacheStaticCompute},
      {obs::kCacheDynamicProbe, obs::kCacheDynamicCompute},
      {obs::kCacheLintProbe, obs::kCacheLintCompute},
      {obs::kCacheRepairProbe, obs::kCacheRepairCompute},
      {obs::kCacheLintTextProbe, obs::kCacheLintTextCompute},
      {obs::kCacheEvidenceTextProbe, obs::kCacheEvidenceTextCompute},
      {obs::kCacheExploreProbe, obs::kCacheExploreCompute},
  };
  std::uint64_t sum = 0;
  for (const auto& k : kKinds) {
    sum += obs::metrics().counter(computes ? k.compute : k.probe).value();
  }
  return sum;
}

bool write_all(int fd, const char* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::write(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

Server::Server(ServerOptions opts) : opts_(std::move(opts)) {
  pool_ = std::make_unique<support::TaskPool>(
      support::resolve_jobs(opts_.jobs), opts_.queue_limit);
  eval::ArtifactCache& cache = eval::artifact_cache();
  if (opts_.cache_budget > 0) cache.set_byte_budget(opts_.cache_budget);
  if (!opts_.cache_snapshot.empty() &&
      std::filesystem::exists(opts_.cache_snapshot)) {
    cache.load_snapshot(opts_.cache_snapshot);
  }
}

Server::~Server() { drain(); }

void Server::submit_line(const std::string& line,
                         std::function<void(std::string)> respond) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  obs::metrics().counter(obs::kServeRequests).add();

  ParseOutcome parsed = parse_request(line);
  if (!parsed.ok) {
    rejected_malformed_.fetch_add(1, std::memory_order_relaxed);
    errors_.fetch_add(1, std::memory_order_relaxed);
    obs::metrics().counter(obs::kServeRejectedMalformed).add();
    obs::metrics().counter(obs::kServeResponsesError).add();
    respond(make_error_response(parsed.id, parsed.error_kind,
                                parsed.error_message));
    return;
  }
  Request& req = parsed.request;

  if (shutdown_requested_.load(std::memory_order_relaxed) ||
      drained_.load(std::memory_order_relaxed)) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    obs::metrics().counter(obs::kServeResponsesError).add();
    respond(make_error_response(req.id, "shutting_down",
                                "server is draining; request not admitted"));
    return;
  }

  if (req.verb == Verb::Shutdown) {
    // Acknowledged inline so the ack cannot be stuck behind queued work;
    // the serve loop drains (running everything already admitted) before
    // exiting.
    shutdown_requested_.store(true, std::memory_order_relaxed);
    ok_.fetch_add(1, std::memory_order_relaxed);
    obs::metrics().counter(obs::kServeResponsesOk).add();
    json::Object ack;
    ack.set("draining", json::Value(true));
    respond(make_ok_response(req.id, Verb::Shutdown,
                             json::Value(std::move(ack))));
    return;
  }

  obs::metrics()
      .histogram(obs::kServeQueueDepth)
      .observe(pool_->queue_depth());
  const std::uint64_t admit_ns = obs::now_wall_ns();
  const int priority = req.priority;
  // The callback is shared with the task up front, NOT moved into it:
  // try_submit constructs the closure before deciding, so a move would
  // leave `respond` empty on the rejection path below.
  auto respond_shared = std::make_shared<std::function<void(std::string)>>(
      std::move(respond));
  const bool admitted = pool_->try_submit(
      priority, [this, req = std::move(req), respond_shared, admit_ns]() {
        handle_admitted(req, admit_ns, *respond_shared);
      });
  if (!admitted) {
    // try_submit refused: the bounded queue is full (backpressure) or the
    // pool closed between the drain check above and here.
    const bool closing = pool_->closed();
    errors_.fetch_add(1, std::memory_order_relaxed);
    obs::metrics().counter(obs::kServeResponsesError).add();
    if (closing) {
      (*respond_shared)(
          make_error_response(parsed.id, "shutting_down",
                              "server is draining; request not admitted"));
    } else {
      rejected_queue_full_.fetch_add(1, std::memory_order_relaxed);
      obs::metrics().counter(obs::kServeRejectedQueueFull).add();
      (*respond_shared)(make_error_response(
          parsed.id, "queue_full",
          "admission queue at --queue-limit; retry after responses drain"));
    }
  }
}

std::string Server::handle_line(const std::string& line) {
  std::mutex mu;
  std::condition_variable cv;
  std::string response;
  bool done = false;
  submit_line(line, [&](std::string r) {
    std::lock_guard<std::mutex> lock(mu);
    response = std::move(r);
    done = true;
    cv.notify_one();
  });
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return done; });
  return response;
}

void Server::handle_admitted(const Request& req, std::uint64_t admit_ns,
                             const std::function<void(std::string)>& respond) {
  const std::int64_t deadline_ms =
      req.deadline_ms > 0 ? req.deadline_ms : opts_.default_deadline_ms;
  if (deadline_ms > 0) {
    const std::uint64_t waited_ms =
        (obs::now_wall_ns() - admit_ns) / 1'000'000ULL;
    if (waited_ms > static_cast<std::uint64_t>(deadline_ms)) {
      rejected_deadline_.fetch_add(1, std::memory_order_relaxed);
      errors_.fetch_add(1, std::memory_order_relaxed);
      obs::metrics().counter(obs::kServeRejectedDeadline).add();
      obs::metrics().counter(obs::kServeResponsesError).add();
      respond(make_error_response(
          req.id, "deadline_expired",
          "deadline_ms elapsed while queued (waited " +
              std::to_string(waited_ms) + " ms)"));
      return;
    }
  }

  std::string response;
  {
    obs::Span span(obs::kSpanServeRequest, req.id);
    const std::uint64_t tick = register_active_tick();
    try {
      response = make_ok_response(req.id, req.verb, run_verb(req));
      ok_.fetch_add(1, std::memory_order_relaxed);
      obs::metrics().counter(obs::kServeResponsesOk).add();
    } catch (const Error& e) {
      response = make_error_response(req.id, "analysis_failed", e.what());
      errors_.fetch_add(1, std::memory_order_relaxed);
      obs::metrics().counter(obs::kServeResponsesError).add();
    } catch (const std::exception& e) {
      response = make_error_response(req.id, "internal", e.what());
      errors_.fetch_add(1, std::memory_order_relaxed);
      obs::metrics().counter(obs::kServeResponsesError).add();
    }
    unregister_active_tick(tick);
  }
  respond(std::move(response));
  obs::metrics()
      .histogram(obs::kServeRequestLatency)
      .observe((obs::now_wall_ns() - admit_ns) / 1'000ULL);
}

json::Value Server::run_verb(const Request& req) {
  eval::ArtifactCache& cache = eval::artifact_cache();
  switch (req.verb) {
    case Verb::Analyze: {
      obs::metrics().counter(obs::kServeVerbAnalyze).add();
      // Default-constructed detector options on purpose: every serve
      // request and the stats pipeline stage share the same cache keys,
      // so warmth transfers across clients. The token count rides along
      // in the response and -- being a snapshot-persisted artifact kind
      // -- gives the drain-time snapshot warm-restart value.
      const int tokens = cache.token_count(req.code);
      json::Value result = [&] {
        if (req.detector == "static") {
          return race_report_to_json(cache.static_report(req.code, {}));
        }
        if (req.detector == "dynamic") {
          return race_report_to_json(cache.dynamic_report(req.code, {}));
        }
        // hybrid: static union dynamic (the paper's traditional-tool
        // column). Non-executable programs keep their static verdict.
        analysis::RaceReport merged = cache.static_report(req.code, {});
        try {
          const analysis::RaceReport& dyn = cache.dynamic_report(req.code, {});
          for (const analysis::RacePair& p : dyn.pairs) merged.add_pair(p);
        } catch (const Error& e) {
          merged.diagnostics.push_back(
              std::string("dynamic detector unavailable: ") + e.what());
        }
        return race_report_to_json(merged);
      }();
      result.as_object().set("tokens", json::Value(tokens));
      return result;
    }
    case Verb::Lint: {
      obs::metrics().counter(obs::kServeVerbLint).add();
      const int tokens = cache.token_count(req.code);
      json::Value result = lint_report_to_json(cache.lint_report(req.code));
      result.as_object().set("tokens", json::Value(tokens));
      return result;
    }
    case Verb::Fix:
      obs::metrics().counter(obs::kServeVerbFix).add();
      // Never writes files: the patched source rides in the response.
      return repair_result_to_json(cache.repair_result(req.code, {}));
    case Verb::Explore:
      obs::metrics().counter(obs::kServeVerbExplore).add();
      return explore_result_to_json(cache.explore_result(req.code, {}));
    case Verb::Stats:
      obs::metrics().counter(obs::kServeVerbStats).add();
      return stats_result();
    case Verb::Shutdown:
      break;  // handled at admission
  }
  throw Error("unreachable verb");
}

json::Value Server::stats_result() {
  eval::ArtifactCache& cache = eval::artifact_cache();
  const std::uint64_t probes = cache_counter_sum(/*computes=*/false);
  const std::uint64_t computes = cache_counter_sum(/*computes=*/true);

  json::Object server;
  server.set("jobs", json::Value(pool_->size()));
  server.set("queue_limit",
             json::Value(static_cast<std::int64_t>(opts_.queue_limit)));
  server.set("queue_depth",
             json::Value(static_cast<std::int64_t>(pool_->queue_depth())));
  server.set("executed",
             json::Value(static_cast<std::int64_t>(pool_->executed())));
  server.set("requests",
             json::Value(static_cast<std::int64_t>(requests_.load())));
  server.set("responses_ok", json::Value(static_cast<std::int64_t>(ok_.load())));
  server.set("responses_error",
             json::Value(static_cast<std::int64_t>(errors_.load())));
  json::Object rejected;
  rejected.set("queue_full", json::Value(static_cast<std::int64_t>(
                                 rejected_queue_full_.load())));
  rejected.set("deadline", json::Value(static_cast<std::int64_t>(
                               rejected_deadline_.load())));
  rejected.set("malformed", json::Value(static_cast<std::int64_t>(
                                rejected_malformed_.load())));
  server.set("rejected", json::Value(std::move(rejected)));

  json::Object cache_obj;
  cache_obj.set("entries", json::Value(static_cast<std::int64_t>(cache.size())));
  cache_obj.set("resident_bytes",
                json::Value(static_cast<std::int64_t>(cache.resident_bytes())));
  cache_obj.set("byte_budget",
                json::Value(static_cast<std::int64_t>(cache.byte_budget())));
  cache_obj.set("condemned", json::Value(static_cast<std::int64_t>(
                                 cache.condemned_count())));
  cache_obj.set("probes", json::Value(static_cast<std::int64_t>(probes)));
  cache_obj.set("computes", json::Value(static_cast<std::int64_t>(computes)));
  cache_obj.set("hits",
                json::Value(static_cast<std::int64_t>(probes - computes)));

  json::Object o;
  o.set("server", json::Value(std::move(server)));
  o.set("cache", json::Value(std::move(cache_obj)));
  return json::Value(std::move(o));
}

std::uint64_t Server::register_active_tick() {
  const std::uint64_t tick = eval::artifact_cache().current_tick();
  std::lock_guard<std::mutex> lock(active_mu_);
  active_ticks_.insert(tick);
  return tick;
}

void Server::unregister_active_tick(std::uint64_t tick) {
  std::uint64_t min_active = UINT64_MAX;
  {
    std::lock_guard<std::mutex> lock(active_mu_);
    active_ticks_.erase(active_ticks_.find(tick));
    if (!active_ticks_.empty()) min_active = *active_ticks_.begin();
  }
  // Entries evicted before the oldest still-running request started can
  // no longer be referenced by anyone; with no active requests at all
  // (UINT64_MAX) everything condemned is freeable.
  eval::artifact_cache().reclaim_evicted(min_active);
}

std::uint64_t Server::serve_fd(int in_fd, int out_fd,
                               const std::atomic<bool>* stop) {
  std::mutex out_mu;
  std::uint64_t written = 0;
  const auto respond = [&](std::string line) {
    line += '\n';
    std::lock_guard<std::mutex> lock(out_mu);
    if (!write_all(out_fd, line.data(), line.size())) {
      std::fprintf(stderr, "warning: serve: response write failed\n");
    }
    ++written;
  };

  std::string buffer;
  char chunk[4096];
  bool eof = false;
  while (!eof && !shutdown_requested() &&
         (stop == nullptr || !stop->load(std::memory_order_relaxed))) {
    const ssize_t n = ::read(in_fd, chunk, sizeof(chunk));
    if (n < 0) {
      // A signal (SIGINT/SIGTERM without SA_RESTART) lands here; the
      // loop condition sees the stop flag and falls through to drain.
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) {
      eof = true;
    } else {
      buffer.append(chunk, static_cast<std::size_t>(n));
    }
    std::size_t start = 0;
    for (;;) {
      const std::size_t nl = buffer.find('\n', start);
      if (nl == std::string::npos) break;
      const std::string line = buffer.substr(start, nl - start);
      start = nl + 1;
      if (!line.empty()) submit_line(line, respond);
      if (shutdown_requested()) break;
    }
    buffer.erase(0, start);
  }
  // A final unterminated line at EOF is still a request.
  if (eof && !buffer.empty() && !shutdown_requested()) {
    submit_line(buffer, respond);
  }
  drain();
  std::lock_guard<std::mutex> lock(out_mu);
  return written;
}

void Server::drain() {
  bool expected = false;
  if (!drained_.compare_exchange_strong(expected, true)) {
    pool_->drain();  // a concurrent drain already closed admission
    return;
  }
  obs::Span span(obs::kSpanServeDrain);
  obs::metrics().counter(obs::kServeDrains).add();
  pool_->close();
  pool_->drain();
  eval::ArtifactCache& cache = eval::artifact_cache();
  if (!opts_.cache_snapshot.empty()) {
    // Temp + rename, same contract as the obs writers: an interrupt
    // after this point can never leave a truncated snapshot.
    const std::string tmp = opts_.cache_snapshot + ".tmp";
    if (cache.save_snapshot(tmp) &&
        std::rename(tmp.c_str(), opts_.cache_snapshot.c_str()) == 0) {
      // saved
    } else {
      std::remove(tmp.c_str());
      std::fprintf(stderr, "warning: cannot write cache snapshot %s\n",
                   opts_.cache_snapshot.c_str());
    }
  }
  obs::flush_obs_outputs();
}

}  // namespace drbml::serve
