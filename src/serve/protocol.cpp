#include "serve/protocol.hpp"

#include "drb/corpus.hpp"
#include "lint/emit.hpp"
#include "support/error.hpp"

namespace drbml::serve {

const char* verb_name(Verb v) noexcept {
  switch (v) {
    case Verb::Analyze: return "analyze";
    case Verb::Lint: return "lint";
    case Verb::Fix: return "fix";
    case Verb::Explore: return "explore";
    case Verb::Stats: return "stats";
    case Verb::Shutdown: return "shutdown";
  }
  return "?";
}

namespace {

ParseOutcome fail(std::string id, const char* kind, std::string message) {
  ParseOutcome out;
  out.error_kind = kind;
  out.error_message = std::move(message);
  out.id = std::move(id);
  return out;
}

bool verb_from_name(const std::string& name, Verb& out) {
  if (name == "analyze") out = Verb::Analyze;
  else if (name == "lint") out = Verb::Lint;
  else if (name == "fix") out = Verb::Fix;
  else if (name == "explore") out = Verb::Explore;
  else if (name == "stats") out = Verb::Stats;
  else if (name == "shutdown") out = Verb::Shutdown;
  else return false;
  return true;
}

bool needs_code(Verb v) noexcept {
  return v == Verb::Analyze || v == Verb::Lint || v == Verb::Fix ||
         v == Verb::Explore;
}

}  // namespace

ParseOutcome parse_request(const std::string& line) {
  json::Value doc;
  try {
    doc = json::parse(line);
  } catch (const Error& e) {
    return fail("", "bad_json", e.what());
  }
  if (!doc.is_object()) {
    return fail("", "bad_request", "request must be a JSON object");
  }
  const json::Object& obj = doc.as_object();

  std::string id;
  if (const json::Value* v = obj.find("id")) {
    if (!v->is_string()) return fail("", "bad_request", "'id' must be a string");
    id = v->as_string();
  }
  if (id.empty()) return fail("", "bad_request", "missing non-empty 'id'");

  const json::Value* verb_val = obj.find("verb");
  if (verb_val == nullptr || !verb_val->is_string()) {
    return fail(id, "bad_request", "missing 'verb' string");
  }
  Request req;
  req.id = id;
  if (!verb_from_name(verb_val->as_string(), req.verb)) {
    return fail(id, "bad_request",
                "unknown verb '" + verb_val->as_string() + "'");
  }

  if (const json::Value* v = obj.find("priority")) {
    if (!v->is_int()) return fail(id, "bad_request", "'priority' must be an integer");
    req.priority = static_cast<int>(v->as_int());
  }
  if (const json::Value* v = obj.find("deadline_ms")) {
    if (!v->is_int() || v->as_int() < 0) {
      return fail(id, "bad_request", "'deadline_ms' must be a non-negative integer");
    }
    req.deadline_ms = v->as_int();
  }
  if (const json::Value* v = obj.find("detector")) {
    if (!v->is_string()) return fail(id, "bad_request", "'detector' must be a string");
    req.detector = v->as_string();
    if (req.detector != "static" && req.detector != "dynamic" &&
        req.detector != "hybrid") {
      return fail(id, "bad_request",
                  "'detector' must be static, dynamic, or hybrid");
    }
  }

  const json::Value* code_val = obj.find("code");
  const json::Value* entry_val = obj.find("entry");
  if (code_val != nullptr && entry_val != nullptr) {
    return fail(id, "bad_request", "'code' and 'entry' are exclusive");
  }
  if (code_val != nullptr) {
    if (!code_val->is_string()) {
      return fail(id, "bad_request", "'code' must be a string");
    }
    req.code = code_val->as_string();
  } else if (entry_val != nullptr) {
    if (!entry_val->is_string()) {
      return fail(id, "bad_request", "'entry' must be a string");
    }
    const drb::CorpusEntry* e = drb::find_entry(entry_val->as_string());
    if (e == nullptr) {
      return fail(id, "bad_request",
                  "no such corpus entry '" + entry_val->as_string() + "'");
    }
    req.code = drb::drb_code(*e);
  }
  if (needs_code(req.verb) && req.code.empty()) {
    return fail(id, "bad_request",
                std::string("'") + verb_name(req.verb) +
                    "' requires 'code' or 'entry'");
  }

  ParseOutcome out;
  out.ok = true;
  out.request = std::move(req);
  out.id = std::move(id);
  return out;
}

std::string make_ok_response(const std::string& id, Verb verb,
                             json::Value result) {
  json::Object o;
  o.set("id", json::Value(id));
  o.set("ok", json::Value(true));
  o.set("verb", json::Value(verb_name(verb)));
  o.set("result", std::move(result));
  return json::Value(std::move(o)).dump();
}

std::string make_error_response(const std::string& id, const std::string& kind,
                                const std::string& message) {
  json::Object err;
  err.set("kind", json::Value(kind));
  err.set("message", json::Value(message));
  json::Object o;
  o.set("id", json::Value(id));
  o.set("ok", json::Value(false));
  o.set("error", json::Value(std::move(err)));
  return json::Value(std::move(o)).dump();
}

namespace {

json::Object access_to_json(const analysis::RaceAccess& a) {
  json::Object o;
  o.set("expr", json::Value(a.expr_text));
  o.set("var", json::Value(a.var_name));
  o.set("line", json::Value(a.loc.line));
  o.set("col", json::Value(a.loc.col));
  o.set("op", json::Value(std::string(1, a.op)));
  return o;
}

}  // namespace

json::Value race_report_to_json(const analysis::RaceReport& r) {
  json::Object o;
  o.set("race", json::Value(r.race_detected));
  json::Array pairs;
  for (const analysis::RacePair& p : r.pairs) {
    json::Object po;
    po.set("first", json::Value(access_to_json(p.first)));
    po.set("second", json::Value(access_to_json(p.second)));
    if (!p.note.empty()) po.set("note", json::Value(p.note));
    pairs.push_back(json::Value(std::move(po)));
  }
  o.set("pairs", json::Value(std::move(pairs)));
  o.set("discharged", json::Value(static_cast<std::int64_t>(r.discharged.size())));
  json::Array diags;
  for (const std::string& d : r.diagnostics) diags.push_back(json::Value(d));
  o.set("diagnostics", json::Value(std::move(diags)));
  return json::Value(std::move(o));
}

json::Value lint_report_to_json(const lint::LintReport& r) {
  json::Object o;
  o.set("race", json::Value(r.race.race_detected));
  json::Array diags;
  for (const lint::Diagnostic& d : r.diagnostics) {
    json::Object dobj;
    dobj.set("check", json::Value(d.check_id));
    dobj.set("line", json::Value(d.loc.line));
    dobj.set("message", json::Value(d.message));
    if (!d.fixit.empty()) dobj.set("fixit", json::Value(d.fixit));
    diags.push_back(json::Value(std::move(dobj)));
  }
  o.set("diagnostics", json::Value(std::move(diags)));
  o.set("suppressed", json::Value(r.suppressed));
  return json::Value(std::move(o));
}

json::Value repair_result_to_json(const repair::RepairResult& r) {
  json::Object o;
  o.set("status", json::Value(repair::repair_status_name(r.status)));
  o.set("patched", json::Value(r.patched));
  if (!r.patch_id.empty()) o.set("patch_id", json::Value(r.patch_id));
  if (!r.description.empty()) o.set("description", json::Value(r.description));
  if (!r.family.empty()) o.set("family", json::Value(r.family));
  o.set("attempts", json::Value(r.attempts));
  if (!r.message.empty()) o.set("message", json::Value(r.message));
  return json::Value(std::move(o));
}

json::Value explore_result_to_json(const explore::ExploreResult& r) {
  json::Object o;
  o.set("race", json::Value(r.race_detected));
  o.set("schedules_run", json::Value(r.schedules_run));
  o.set("first_race_schedule", json::Value(r.first_race_schedule));
  o.set("coverage_points",
        json::Value(static_cast<std::int64_t>(r.coverage.size())));
  o.set("witness", json::Value(r.witness));
  return json::Value(std::move(o));
}

}  // namespace drbml::serve
