// Wire protocol of the detection-as-a-service daemon (`drbml serve`).
//
// Transport is newline-delimited JSON: one request object per line in,
// one response object per line out. Requests and responses are paired by
// the caller-chosen `id`; responses may arrive in any order (workers run
// concurrently), so callers must demultiplex by id, never by position.
//
// Request object:
//   {"id": "r1", "verb": "analyze", "code": "...", ...}
//     id          string, required, non-empty; echoed verbatim
//     verb        "analyze" | "lint" | "fix" | "explore" | "stats" |
//                 "shutdown"
//     code        OpenMP C source text (required for the four code verbs
//                 unless `entry` is given)
//     entry       DRB corpus entry name, an alternative to `code`
//     detector    analyze only: "static" | "dynamic" | "hybrid"
//                 (default "hybrid"; LLM detectors are excluded so serve
//                 results stay deterministic)
//     priority    int, default 0; higher-priority requests dequeue first
//     deadline_ms int, default 0 (= server default); a request still
//                 queued this many ms after admission is answered
//                 `deadline_expired` instead of run
//
// Response object (exactly one per request line, including rejects):
//   {"id": "r1", "ok": true,  "verb": "analyze", "result": {...}}
//   {"id": "r1", "ok": false, "error": {"kind": "...", "message": "..."}}
//
// Error kinds: bad_json, bad_request, queue_full, deadline_expired,
// shutting_down, analysis_failed, internal. `queue_full` is the
// backpressure signal -- the request was never admitted and can be
// retried; `deadline_expired` means it was admitted but aged out in the
// queue. Responses are compact (no whitespace) and field order is fixed,
// so a given request body yields byte-identical responses at any
// `--jobs` value.
#pragma once

#include <cstdint>
#include <string>

#include "analysis/report.hpp"
#include "explore/explore.hpp"
#include "lint/lint.hpp"
#include "repair/repair.hpp"
#include "support/json.hpp"

namespace drbml::serve {

enum class Verb { Analyze, Lint, Fix, Explore, Stats, Shutdown };

[[nodiscard]] const char* verb_name(Verb v) noexcept;

/// A validated request. `code` is fully resolved (corpus entries are
/// already expanded) by the time parse_request returns.
struct Request {
  std::string id;
  Verb verb = Verb::Stats;
  std::string code;
  std::string detector = "hybrid";  // analyze only
  int priority = 0;
  std::int64_t deadline_ms = 0;  // 0 = use the server default
};

/// Outcome of parsing one request line.
struct ParseOutcome {
  bool ok = false;
  Request request;
  /// On failure: the error kind ("bad_json" | "bad_request"), a human
  /// message, and whatever id could be recovered ("" when the line was
  /// not even an object).
  std::string error_kind;
  std::string error_message;
  std::string id;
};

/// Parses and validates one NDJSON request line. Never throws: malformed
/// input comes back as a structured failure the server answers with an
/// error response.
[[nodiscard]] ParseOutcome parse_request(const std::string& line);

/// Renders a success response line (no trailing newline).
[[nodiscard]] std::string make_ok_response(const std::string& id, Verb verb,
                                           json::Value result);

/// Renders an error response line (no trailing newline).
[[nodiscard]] std::string make_error_response(const std::string& id,
                                              const std::string& kind,
                                              const std::string& message);

// Result serializers, shared by the server and tests. All emit fixed
// field order and only work-derived values (no clocks), preserving the
// byte-identity contract.
[[nodiscard]] json::Value race_report_to_json(const analysis::RaceReport& r);
[[nodiscard]] json::Value lint_report_to_json(const lint::LintReport& r);
[[nodiscard]] json::Value repair_result_to_json(const repair::RepairResult& r);
[[nodiscard]] json::Value explore_result_to_json(
    const explore::ExploreResult& r);

}  // namespace drbml::serve
