// The serve daemon: a long-lived request loop over the protocol in
// serve/protocol.hpp, executing verbs on a priority TaskPool and sharing
// one warm ArtifactCache across every request.
//
// Layering:
//
//   serve_fd / submit_line        transport + admission control
//        |                          (bounded queue -> queue_full,
//        v                           closed pool -> shutting_down)
//   TaskPool (support/parallel)   priority scheduling, N workers
//        |
//        v
//   handle_admitted               deadline-expiry check, obs span,
//        |                        cache-tick registration
//        v
//   ArtifactCache (eval)          the shared warm cache; repeated
//                                 requests for the same code hit
//
// Admission control: submit_line never blocks. A request that cannot be
// queued is answered immediately -- `queue_full` when the bounded queue
// is at --queue-limit (backpressure: retry later), `shutting_down` once
// a drain began. Admitted requests whose deadline elapses while queued
// are answered `deadline_expired` without running. Exactly one response
// is emitted per request line, always.
//
// Graceful shutdown: drain() closes admission, runs everything already
// queued, optionally saves the cache snapshot, and flushes --metrics /
// --trace output via obs::flush_obs_outputs() -- so SIGINT/SIGTERM (the
// CLI wires them to the serve loop) never drops in-flight responses or
// truncates observability files.
//
// Memory: with a cache byte budget set, request workers register the
// cache tick they started at; evicted entries are reclaimed only once no
// active request predates their eviction (ArtifactCache's deferred
// reclamation contract), so references held by running verbs never
// dangle.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <string>

#include "serve/protocol.hpp"
#include "support/parallel.hpp"

namespace drbml::serve {

struct ServerOptions {
  /// Worker threads (support::resolve_jobs semantics; 0 = auto).
  int jobs = 0;
  /// Bounded admission queue; 0 = unbounded (no backpressure).
  std::size_t queue_limit = 64;
  /// Default deadline applied to requests that carry none; 0 = none.
  std::int64_t default_deadline_ms = 0;
  /// ArtifactCache byte budget; 0 = unlimited.
  std::uint64_t cache_budget = 0;
  /// Cache snapshot path: loaded at construction, saved at drain ("" =
  /// no persistence).
  std::string cache_snapshot;
};

class Server {
 public:
  explicit Server(ServerOptions opts);
  /// Drains (close admission, run queued work, flush) if the caller
  /// has not already.
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Admits one NDJSON request line. `respond` is invoked exactly once
  /// with the response line (no newline) -- inline for rejects, from a
  /// worker thread for executed requests. `respond` must be thread-safe
  /// against concurrent calls for different requests.
  void submit_line(const std::string& line,
                   std::function<void(std::string)> respond);

  /// Synchronous convenience: submit + wait for the one response
  /// (in-process callers and tests).
  [[nodiscard]] std::string handle_line(const std::string& line);

  /// Reads NDJSON requests from `in_fd` until EOF, a `shutdown` verb, or
  /// `*stop` becomes true (the CLI's signal flag; the read loop is
  /// EINTR-aware so a signal interrupts a blocking read). Writes each
  /// response line to `out_fd` under a lock. Drains before returning.
  /// Returns the number of responses written this session.
  std::uint64_t serve_fd(int in_fd, int out_fd,
                         const std::atomic<bool>* stop = nullptr);

  /// Graceful shutdown: stop admitting, finish queued + running work,
  /// save the cache snapshot (if configured), flush obs outputs.
  /// Idempotent.
  void drain();

  /// True once a `shutdown` request was accepted (serve loops exit).
  [[nodiscard]] bool shutdown_requested() const noexcept {
    return shutdown_requested_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t queue_depth() const { return pool_->queue_depth(); }
  [[nodiscard]] const ServerOptions& options() const noexcept { return opts_; }

 private:
  struct ActiveTicket;
  void handle_admitted(const Request& req, std::uint64_t admit_ns,
                       const std::function<void(std::string)>& respond);
  [[nodiscard]] json::Value run_verb(const Request& req);
  [[nodiscard]] json::Value stats_result();

  /// Registers a request's cache tick; unregistering reclaims evictions
  /// no remaining active request can reference.
  std::uint64_t register_active_tick();
  void unregister_active_tick(std::uint64_t tick);

  ServerOptions opts_;
  std::unique_ptr<support::TaskPool> pool_;
  std::atomic<bool> shutdown_requested_{false};
  std::atomic<bool> drained_{false};

  std::mutex active_mu_;
  std::multiset<std::uint64_t> active_ticks_;

  // Request accounting beyond the obs counters: stats snapshots must
  // reflect this server instance, not process-wide totals.
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> ok_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> rejected_queue_full_{0};
  std::atomic<std::uint64_t> rejected_deadline_{0};
  std::atomic<std::uint64_t> rejected_malformed_{0};
};

}  // namespace drbml::serve
