#include "prompts/prompts.hpp"

#include "support/strings.hpp"

namespace drbml::prompts {

namespace {
constexpr const char* kPlaceholder = "{Code_to_analyze}";
}

const char* style_name(Style s) noexcept {
  switch (s) {
    case Style::BP1: return "BP1";
    case Style::BP2: return "BP2";
    case Style::P1: return "p1";
    case Style::P2: return "p2";
    case Style::P3: return "p3";
  }
  return "?";
}

const std::string& basic_prompt_1_template() {
  static const std::string t =
      "You are an expert in High-Performance Computing. Examine the code "
      "presented to you and ascertain if it contains any data races.\n"
      "Begin with a concise response: either 'yes' for the presence of a "
      "data race or 'no' if absent.\n"
      "\n"
      "{Code_to_analyze}\n";
  return t;
}

const std::string& basic_prompt_2_template() {
  static const std::string t =
      "You are an expert in High-Performance Computing. Examine the code "
      "presented to you and ascertain if it contains any data races.\n"
      "Begin with a concise response: either 'yes' for the presence of a "
      "data race or 'no' if absent.\n"
      "Detail each occurrence of a data race by specifying the variable "
      "pairs involved, using the JSON format outlined below:\n"
      "\"variable_names\": Names of each pair of variables involved in a "
      "data race.\n"
      "\"variable_locations\": line numbers of the paired variables within "
      "the code.\n"
      "\"operation_types\": Corresponding operations, either 'write' or "
      "'read'.\n"
      "\n"
      "{Code_to_analyze}\n";
  return t;
}

const std::string& tool_emulation_template() {
  static const std::string t =
      "You are an expert in High-Performance Computing (HPC).\n"
      "Examine the provided code to identify any data races based on data "
      "dependence analysis.\n"
      "For clarity, a data race occurs when two or more threads access the "
      "same memory location simultaneously in a conflicting manner, without "
      "sufficient synchronization, with at least one of these accesses "
      "involving a write operation. It's crucial to analyze data dependence "
      "before determining potential data races.\n"
      "Begin with a concise response: either 'yes' for the presence of a "
      "data race or 'no' if absent.\n"
      "\n"
      "{Code_to_analyze}\n";
  return t;
}

const std::string& cot_step1_template() {
  static const std::string t =
      "You are an expert in High-Performance Computing (HPC).\n"
      "Analyze data dependence in the given code.\n"
      "\n"
      "{Code_to_analyze}\n";
  return t;
}

const std::string& cot_step2_template() {
  static const std::string t =
      "A data race occurs when two or more threads access the same memory "
      "location simultaneously in a conflicting manner, without sufficient "
      "synchronization, with at least one of these accesses involving a "
      "write operation. Identify any data races based on the given data "
      "dependence information.\n"
      "Begin with a concise response: either 'yes' for the presence of a "
      "data race or 'no' if absent.\n";
  return t;
}

std::string render(const std::string& templ, const std::string& code) {
  return replace_all(templ, kPlaceholder, code);
}

Chat detection_chat(Style style, const std::string& code) {
  switch (style) {
    case Style::BP1:
    case Style::P1:
      return {{"user", render(basic_prompt_1_template(), code)}};
    case Style::BP2:
      return {{"user", render(basic_prompt_2_template(), code)}};
    case Style::P2:
      return {{"user", render(tool_emulation_template(), code)}};
    case Style::P3:
      return {{"user", render(cot_step1_template(), code)},
              {"user", cot_step2_template()}};
  }
  return {};
}

const char* modality_name(Modality m) noexcept {
  switch (m) {
    case Modality::Text: return "text";
    case Modality::Ast: return "text+ast";
    case Modality::DepGraph: return "text+depgraph";
    case Modality::Lint: return "text+lint";
    case Modality::Evidence: return "text+evidence";
  }
  return "?";
}

Chat modal_detection_chat(Style style, Modality modality,
                          const std::string& code, const std::string& aux) {
  Chat chat = detection_chat(style, code);
  if (modality == Modality::Text || chat.empty()) return chat;
  const char* marker = modality == Modality::Ast        ? kAstMarker
                       : modality == Modality::Lint     ? kLintMarker
                       : modality == Modality::Evidence ? kEvidenceMarker
                                                        : kDepGraphMarker;
  chat.front().content += "\n";
  chat.front().content += marker;
  chat.front().content += "\n";
  chat.front().content += aux;
  return chat;
}

Chat varid_chat(const std::string& code) {
  return {{"user", render(basic_prompt_2_template(), code)}};
}

std::string finetune_detection_prompt(const std::string& code) {
  return render(basic_prompt_1_template(), code);
}

std::string finetune_detection_response(bool race) {
  return race ? "yes" : "no";
}

std::string finetune_varid_prompt(const std::string& code) {
  return render(basic_prompt_2_template(), code);
}

}  // namespace drbml::prompts
