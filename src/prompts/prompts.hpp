// The paper's prompt library (Listings 3-9) and the chat-turn model.
//
// Strategies evaluated in Section 4.1:
//   p1 -- Listing 4: succinct detection prompt (basic prompt 1 / BP1)
//   p2 -- Listing 6: tool-emulation prompt with an explicit definition
//   p3 -- Listing 7: two-turn chain-of-thought (dependence analysis first)
// plus BP2 (Listing 5, multi-task JSON prompt) and the fine-tuning
// templates of Listings 8/9.
#pragma once

#include <string>
#include <vector>

namespace drbml::prompts {

/// One chat message. `role` follows the OpenAI convention
/// ("system"/"user"/"assistant").
struct Message {
  std::string role;
  std::string content;
};

using Chat = std::vector<Message>;

enum class Style {
  BP1,  // Listing 4
  BP2,  // Listing 5 (multi-task, JSON output)
  P1,   // == BP1 in the paper's evaluation
  P2,   // Listing 6
  P3,   // Listing 7, chain-of-thought (two turns)
};

[[nodiscard]] const char* style_name(Style s) noexcept;

/// Input modalities (paper Section 5 future work): the code alone, or the
/// code augmented with an auxiliary structured representation.
enum class Modality {
  Text,      // code only (the paper's evaluated setting)
  Ast,       // + pretty-printed abstract syntax tree
  DepGraph,  // + serialized data-dependence graph
  Lint,      // + OpenMP correctness linter findings (src/lint)
  Evidence,  // + the static detector's evidence chains (src/analysis)
};

[[nodiscard]] const char* modality_name(Modality m) noexcept;

/// Renders the full chat for a detection query over `code`. P3 yields two
/// user turns (the harness feeds the first reply back before the second).
[[nodiscard]] Chat detection_chat(Style style, const std::string& code);

/// Detection chat with an auxiliary modality appended. `aux` is the
/// serialized AST or dependence graph produced by the caller.
[[nodiscard]] Chat modal_detection_chat(Style style, Modality modality,
                                        const std::string& code,
                                        const std::string& aux);

/// Section markers used to embed auxiliary representations in prompts.
inline constexpr const char* kAstMarker = "=== Abstract syntax tree ===";
inline constexpr const char* kDepGraphMarker =
    "=== Data dependence graph ===";
inline constexpr const char* kLintMarker =
    "=== Static analysis findings ===";
inline constexpr const char* kEvidenceMarker =
    "=== Static race evidence ===";

/// Listing 5 / BP2: detection plus structured variable identification.
[[nodiscard]] Chat varid_chat(const std::string& code);

/// Listing 8: fine-tuning prompt for detection (response is "yes"/"no").
[[nodiscard]] std::string finetune_detection_prompt(const std::string& code);
[[nodiscard]] std::string finetune_detection_response(bool race);

/// Listing 9: fine-tuning prompt for variable identification; the
/// response is assembled by the dataset builder from the labels.
[[nodiscard]] std::string finetune_varid_prompt(const std::string& code);

/// Substitutes `{Code_to_analyze}` in a template.
[[nodiscard]] std::string render(const std::string& templ,
                                 const std::string& code);

// Raw template text (exposed for tests and documentation).
[[nodiscard]] const std::string& basic_prompt_1_template();
[[nodiscard]] const std::string& basic_prompt_2_template();
[[nodiscard]] const std::string& tool_emulation_template();   // Listing 6
[[nodiscard]] const std::string& cot_step1_template();        // Listing 7a
[[nodiscard]] const std::string& cot_step2_template();        // Listing 7b

}  // namespace drbml::prompts
