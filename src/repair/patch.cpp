#include "repair/patch.hpp"

#include <algorithm>
#include <functional>
#include <utility>

#include "minic/parser.hpp"
#include "minic/printer.hpp"
#include "support/error.hpp"

namespace drbml::repair {

namespace {

using namespace minic;

// ---------------------------------------------------------------------------
// AST walking

void visit_expr(const Expr* e, const std::function<void(const Expr&)>& f) {
  if (e == nullptr) return;
  f(*e);
  switch (e->kind) {
    case ExprKind::Subscript: {
      const auto& s = static_cast<const Subscript&>(*e);
      visit_expr(s.base.get(), f);
      visit_expr(s.index.get(), f);
      break;
    }
    case ExprKind::Unary:
      visit_expr(static_cast<const Unary&>(*e).operand.get(), f);
      break;
    case ExprKind::Binary: {
      const auto& b = static_cast<const Binary&>(*e);
      visit_expr(b.lhs.get(), f);
      visit_expr(b.rhs.get(), f);
      break;
    }
    case ExprKind::Assign: {
      const auto& a = static_cast<const Assign&>(*e);
      visit_expr(a.target.get(), f);
      visit_expr(a.value.get(), f);
      break;
    }
    case ExprKind::Conditional: {
      const auto& c = static_cast<const Conditional&>(*e);
      visit_expr(c.cond.get(), f);
      visit_expr(c.then_expr.get(), f);
      visit_expr(c.else_expr.get(), f);
      break;
    }
    case ExprKind::Call:
      for (const auto& a : static_cast<const Call&>(*e).args) {
        visit_expr(a.get(), f);
      }
      break;
    case ExprKind::Cast:
      visit_expr(static_cast<const Cast&>(*e).operand.get(), f);
      break;
    default:
      break;
  }
}

/// Visits the expressions attached *directly* to `s` (not those of child
/// statements).
void visit_stmt_exprs(const Stmt& s, const std::function<void(const Expr&)>& f) {
  switch (s.kind) {
    case StmtKind::Decl:
      for (const auto& d : static_cast<const DeclStmt&>(s).decls) {
        for (const auto& dim : d->array_dims) visit_expr(dim.get(), f);
        visit_expr(d->init.get(), f);
      }
      break;
    case StmtKind::Expr:
      visit_expr(static_cast<const ExprStmt&>(s).expr.get(), f);
      break;
    case StmtKind::If:
      visit_expr(static_cast<const IfStmt&>(s).cond.get(), f);
      break;
    case StmtKind::For: {
      const auto& l = static_cast<const ForStmt&>(s);
      visit_expr(l.cond.get(), f);
      visit_expr(l.inc.get(), f);
      break;
    }
    case StmtKind::While:
      visit_expr(static_cast<const WhileStmt&>(s).cond.get(), f);
      break;
    case StmtKind::Do:
      visit_expr(static_cast<const DoStmt&>(s).cond.get(), f);
      break;
    case StmtKind::Return:
      visit_expr(static_cast<const ReturnStmt&>(s).value.get(), f);
      break;
    default:
      break;
  }
}

/// Calls `f` on every direct child statement slot of `s`; stops early when
/// `f` returns true.
bool for_child_slots(Stmt& s, const std::function<bool(StmtPtr&)>& f) {
  switch (s.kind) {
    case StmtKind::Compound:
      for (auto& c : static_cast<CompoundStmt&>(s).body) {
        if (f(c)) return true;
      }
      break;
    case StmtKind::If: {
      auto& i = static_cast<IfStmt&>(s);
      if (f(i.then_branch)) return true;
      if (i.else_branch && f(i.else_branch)) return true;
      break;
    }
    case StmtKind::For: {
      auto& l = static_cast<ForStmt&>(s);
      if (l.init && f(l.init)) return true;
      if (f(l.body)) return true;
      break;
    }
    case StmtKind::While:
      if (f(static_cast<WhileStmt&>(s).body)) return true;
      break;
    case StmtKind::Do:
      if (f(static_cast<DoStmt&>(s).body)) return true;
      break;
    case StmtKind::Omp: {
      auto& o = static_cast<OmpStmt&>(s);
      if (o.body && f(o.body)) return true;
      break;
    }
    default:
      break;
  }
  return false;
}

bool walk_slot(StmtPtr& slot, const std::function<bool(StmtPtr&)>& f) {
  if (!slot) return false;
  if (f(slot)) return true;
  return for_child_slots(*slot,
                         [&](StmtPtr& c) { return walk_slot(c, f); });
}

bool walk_unit(TranslationUnit& tu, const std::function<bool(StmtPtr&)>& f) {
  for (auto& fn : tu.functions) {
    if (!fn->body) continue;
    for (auto& c : fn->body->body) {
      if (walk_slot(c, f)) return true;
    }
  }
  return false;
}

/// The slot holding the statement whose own loc is `anchor`.
StmtPtr* find_slot(TranslationUnit& tu, SourceLoc anchor) {
  StmtPtr* hit = nullptr;
  walk_unit(tu, [&](StmtPtr& slot) {
    if (slot->loc == anchor) {
      hit = &slot;
      return true;
    }
    return false;
  });
  return hit;
}

/// The OmpStmt whose directive loc is `anchor`.
OmpStmt* find_directive(TranslationUnit& tu, SourceLoc anchor) {
  OmpStmt* hit = nullptr;
  walk_unit(tu, [&](StmtPtr& slot) {
    if (auto* omp = stmt_cast<OmpStmt>(slot.get());
        omp != nullptr && omp->directive.loc == anchor) {
      hit = omp;
      return true;
    }
    return false;
  });
  return hit;
}

/// The compound statement (function bodies included) directly holding the
/// statement at `anchor`, plus its index in the body vector.
struct CompoundPos {
  CompoundStmt* compound = nullptr;
  std::size_t index = 0;
};

CompoundPos find_compound_pos(TranslationUnit& tu, SourceLoc anchor) {
  CompoundPos pos;
  auto scan = [&](CompoundStmt& c) {
    for (std::size_t i = 0; i < c.body.size(); ++i) {
      if (c.body[i] && c.body[i]->loc == anchor) {
        pos.compound = &c;
        pos.index = i;
        return true;
      }
    }
    return false;
  };
  for (auto& fn : tu.functions) {
    if (!fn->body) continue;
    if (scan(*fn->body)) return pos;
  }
  walk_unit(tu, [&](StmtPtr& slot) {
    if (auto* c = stmt_cast<CompoundStmt>(slot.get())) return scan(*c);
    return false;
  });
  return pos;
}

bool chain_walk(Stmt* s, SourceLoc loc, std::vector<Stmt*>& chain) {
  chain.push_back(s);
  const bool in_child = for_child_slots(*s, [&](StmtPtr& c) {
    return c && chain_walk(c.get(), loc, chain);
  });
  if (in_child) return true;
  bool hit = (s->loc == loc);
  if (!hit) {
    visit_stmt_exprs(*s, [&](const Expr& e) {
      if (e.loc == loc) hit = true;
    });
  }
  if (hit) return true;
  chain.pop_back();
  return false;
}

// ---------------------------------------------------------------------------
// Textual operations

struct TextOp {
  enum Type { InsertAfter = 0, Replace = 1, Delete = 2, InsertBefore = 3 };
  int line = 0;  // 1-based original line the op targets
  Type type = Replace;
  std::string text;
};

std::string indent_of(const std::string& line) {
  std::size_t i = 0;
  while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
  return line.substr(0, i);
}

/// Trailing comment of a pragma line ("" if none). Pragma lines cannot
/// contain string literals, so a plain substring search is exact.
std::string trailing_comment(const std::string& line) {
  const std::size_t sl = line.find("//");
  const std::size_t bl = line.find("/*");
  const std::size_t pos = std::min(sl, bl);
  if (pos == std::string::npos) return "";
  return line.substr(pos);
}

std::string loc_str(SourceLoc loc) {
  return std::to_string(loc.line) + ":" + std::to_string(loc.col);
}

/// Strips `vars` out of the other data-sharing clause lists of `d` so an
/// added clause never conflicts with an existing classification; clauses
/// whose variable list empties out are dropped.
void strip_sharing_conflicts(OmpDirective& d,
                             const std::vector<std::string>& vars,
                             OmpClauseKind keep) {
  auto is_sharing = [](OmpClauseKind k) {
    return k == OmpClauseKind::Private || k == OmpClauseKind::FirstPrivate ||
           k == OmpClauseKind::LastPrivate || k == OmpClauseKind::Shared ||
           k == OmpClauseKind::Reduction || k == OmpClauseKind::Linear;
  };
  for (auto& c : d.clauses) {
    if (!is_sharing(c.kind) || c.kind == keep) continue;
    std::erase_if(c.vars, [&](const std::string& v) {
      return std::find(vars.begin(), vars.end(), v) != vars.end();
    });
  }
  std::erase_if(d.clauses, [&](const OmpClause& c) {
    return is_sharing(c.kind) && c.vars.empty();
  });
}

}  // namespace

const char* edit_kind_name(EditKind k) noexcept {
  switch (k) {
    case EditKind::AddClause: return "add-clause";
    case EditKind::RemoveClause: return "remove-clause";
    case EditKind::SetCriticalName: return "set-critical-name";
    case EditKind::DemoteSimd: return "demote-simd";
    case EditKind::WrapStmt: return "wrap-stmt";
    case EditKind::WrapLock: return "wrap-lock";
    case EditKind::InsertPragmaBefore: return "insert-pragma";
  }
  return "?";
}

namespace {

int apply_events(const std::vector<LineMap::Event>& events,
                 const std::vector<int>& dropped, int line) noexcept {
  if (std::find(dropped.begin(), dropped.end(), line) != dropped.end()) {
    return 0;
  }
  int out = line;
  for (const auto& ev : events) {
    if (ev.line <= line) out += ev.delta;
  }
  return out;
}

}  // namespace

int LineMap::to_patched_trimmed(int line) const noexcept {
  return apply_events(trimmed_events, dropped_trimmed, line);
}

int LineMap::to_patched_original(int line) const noexcept {
  return apply_events(original_events, dropped_original, line);
}

std::vector<Stmt*> stmt_chain_at(TranslationUnit& tu, SourceLoc loc) {
  std::vector<Stmt*> chain;
  for (auto& fn : tu.functions) {
    if (!fn->body) continue;
    if (chain_walk(fn->body.get(), loc, chain)) return chain;
    chain.clear();
  }
  return chain;
}

OmpStmt* enclosing_region(const std::vector<Stmt*>& chain) noexcept {
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    if (auto* omp = stmt_cast<OmpStmt>(*it)) {
      if (omp->directive.forks_team() ||
          omp->directive.is_worksharing_loop()) {
        return omp;
      }
    }
  }
  return nullptr;
}

int subtree_first_line(const Stmt& s) {
  int best = 0;
  auto note = [&](SourceLoc loc) {
    if (loc.valid() && (best == 0 || loc.line < best)) best = loc.line;
  };
  std::function<void(const Stmt&)> walk = [&](const Stmt& st) {
    note(st.loc);
    visit_stmt_exprs(st, [&](const Expr& e) { note(e.loc); });
    for_child_slots(const_cast<Stmt&>(st), [&](StmtPtr& c) {
      if (c) walk(*c);
      return false;
    });
  };
  walk(s);
  return best;
}

int subtree_last_line(const Stmt& s) {
  int best = 0;
  auto note = [&](SourceLoc loc) {
    if (loc.valid() && loc.line > best) best = loc.line;
  };
  std::function<void(const Stmt&)> walk = [&](const Stmt& st) {
    note(st.loc);
    visit_stmt_exprs(st, [&](const Expr& e) { note(e.loc); });
    for_child_slots(const_cast<Stmt&>(st), [&](StmtPtr& c) {
      if (c) walk(*c);
      return false;
    });
  };
  walk(s);
  return best;
}

namespace {

/// Earliest (line, col) of any node in the subtree -- the point the
/// statement's text starts at, in trimmed coordinates.
SourceLoc subtree_first_loc(const Stmt& s) {
  SourceLoc best;
  auto note = [&](SourceLoc loc) {
    if (!loc.valid()) return;
    if (!best.valid() || loc.line < best.line ||
        (loc.line == best.line && loc.col < best.col)) {
      best = loc;
    }
  };
  std::function<void(const Stmt&)> walk = [&](const Stmt& st) {
    note(st.loc);
    visit_stmt_exprs(st, [&](const Expr& e) { note(e.loc); });
    for_child_slots(const_cast<Stmt&>(st), [&](StmtPtr& c) {
      if (c) walk(*c);
      return false;
    });
  };
  walk(s);
  return best;
}

}  // namespace

ApplyResult apply_patch(const std::string& source, const Patch& patch) {
  ApplyResult r;
  if (patch.edits.empty()) {
    r.message = "empty patch";
    return r;
  }

  Program prog;
  try {
    prog = parse_program(source);
  } catch (const Error& e) {
    r.message = std::string("parse failed: ") + e.what();
    return r;
  }

  // Original text as lines (without terminators).
  std::vector<std::string> lines;
  {
    std::size_t start = 0;
    while (start <= source.size()) {
      const std::size_t nl = source.find('\n', start);
      if (nl == std::string::npos) {
        if (start < source.size()) lines.push_back(source.substr(start));
        break;
      }
      lines.push_back(source.substr(start, nl - start));
      start = nl + 1;
    }
  }

  // Inverse of the strip map: trimmed line -> original line.
  std::vector<int> orig_of(1, 0);
  for (int o = 1; o <= static_cast<int>(lines.size()); ++o) {
    const int t = prog.strip.to_trimmed_line(o);
    if (t <= 0) continue;
    if (static_cast<int>(orig_of.size()) <= t) orig_of.resize(t + 1, 0);
    orig_of[t] = o;
  }
  auto orig_line_of = [&](SourceLoc loc) -> int {
    if (loc.line <= 0 || loc.line >= static_cast<int>(orig_of.size())) return 0;
    return orig_of[loc.line];
  };
  auto line_text = [&](int o) -> const std::string& { return lines[o - 1]; };

  // Trimmed line text, for locating a statement's column within a line.
  std::vector<std::string> trimmed_lines;
  {
    std::size_t start = 0;
    const std::string& t = prog.strip.trimmed;
    while (start <= t.size()) {
      const std::size_t nl = t.find('\n', start);
      if (nl == std::string::npos) {
        if (start < t.size()) trimmed_lines.push_back(t.substr(start));
        break;
      }
      trimmed_lines.push_back(t.substr(start, nl - start));
      start = nl + 1;
    }
  }

  // Inserting *before* a line hops above any immediately preceding
  // comment/blank lines (lines the stripper dropped), so a
  // `// drbml-lint-suppress(id)` comment stays adjacent to the statement
  // it suppresses rather than ending up covering the inserted pragma.
  auto hop_before = [&](int o) {
    while (o > 1 && prog.strip.to_trimmed_line(o - 1) == 0) --o;
    return o;
  };

  std::vector<TextOp> ops;
  LineMap lm;
  auto insert_before = [&](int orig, int trimmed, std::string text) {
    const int at = hop_before(orig);
    ops.push_back({at, TextOp::InsertBefore, std::move(text)});
    lm.trimmed_events.push_back({trimmed, +1});
    lm.original_events.push_back({at, +1});
  };
  auto insert_after = [&](int orig, int trimmed, std::string text) {
    ops.push_back({orig, TextOp::InsertAfter, std::move(text)});
    lm.trimmed_events.push_back({trimmed + 1, +1});
    lm.original_events.push_back({orig + 1, +1});
  };

  // Where (0-based) the code at trimmed position `loc` starts inside its
  // original line, or npos when it cannot be located.
  auto col_in_original = [&](SourceLoc loc, int orig) -> std::size_t {
    if (loc.line <= 0 || loc.line > static_cast<int>(trimmed_lines.size())) {
      return std::string::npos;
    }
    const std::string& tl = trimmed_lines[static_cast<std::size_t>(loc.line - 1)];
    if (loc.col <= 0 || loc.col > static_cast<int>(tl.size())) {
      return std::string::npos;
    }
    const std::string& ol = line_text(orig);
    // No comments stripped before the statement: columns map 1:1.
    const std::string before = tl.substr(0, static_cast<std::size_t>(loc.col - 1));
    if (ol.compare(0, before.size(), before) == 0) {
      return before.size();
    }
    // Otherwise locate the statement's text within the original line.
    return ol.find(tl.substr(static_cast<std::size_t>(loc.col - 1)));
  };

  // Places `block` (a pragma, possibly followed by an opening brace) on
  // its own lines above the statement starting at trimmed `loc`. When the
  // statement does not start its line (e.g. the body of a one-liner
  // `{ x = x + 1; }`), the line is split so the pragma binds to exactly
  // that statement. Ops inserting at the same index land above earlier
  // ones, so both paths push `block` in reverse to keep its order.
  auto pragma_before_stmt = [&](SourceLoc loc,
                                const std::vector<std::string>& block,
                                std::string* err) {
    const int o = orig_line_of(loc);
    if (o == 0) {
      *err = "statement has no original line";
      return false;
    }
    const std::string& ol = line_text(o);
    const std::size_t col = col_in_original(loc, o);
    if (col == std::string::npos) {
      *err = "statement not locatable in its original line";
      return false;
    }
    const std::string indent = indent_of(ol);
    std::string prefix = ol.substr(0, col);
    if (prefix.find_first_not_of(" \t") == std::string::npos) {
      const int at = hop_before(o);
      for (auto it = block.rbegin(); it != block.rend(); ++it) {
        ops.push_back({at, TextOp::InsertBefore, indent + *it});
      }
      const int n = static_cast<int>(block.size());
      lm.trimmed_events.push_back({loc.line, n});
      lm.original_events.push_back({at, n});
      return true;
    }
    // Split: prefix stays, the block and the statement move to new lines.
    while (!prefix.empty() &&
           (prefix.back() == ' ' || prefix.back() == '\t')) {
      prefix.pop_back();
    }
    ops.push_back({o, TextOp::Replace, std::move(prefix)});
    ops.push_back({o, TextOp::InsertAfter, indent + ol.substr(col)});
    for (auto it = block.rbegin(); it != block.rend(); ++it) {
      ops.push_back({o, TextOp::InsertAfter, indent + *it});
    }
    const int n = static_cast<int>(block.size()) + 1;
    lm.trimmed_events.push_back({loc.line, n});
    lm.original_events.push_back({o, n});
    return true;
  };

  TranslationUnit& tu = *prog.unit;

  for (const Edit& e : patch.edits) {
    auto fail = [&](const std::string& why) {
      r.message = std::string(edit_kind_name(e.kind)) + "@" +
                  loc_str(e.anchor) + ": " + why;
    };
    switch (e.kind) {
      case EditKind::AddClause:
      case EditKind::RemoveClause:
      case EditKind::SetCriticalName:
      case EditKind::DemoteSimd: {
        OmpStmt* omp = find_directive(tu, e.anchor);
        if (omp == nullptr) {
          fail("no directive at anchor");
          return r;
        }
        const int o = orig_line_of(omp->directive.loc);
        if (o == 0 || line_text(o).find("#pragma") == std::string::npos) {
          fail("anchor line is not a pragma line");
          return r;
        }
        OmpDirective& d = omp->directive;
        if (e.kind == EditKind::AddClause) {
          strip_sharing_conflicts(d, e.clause_vars, e.clause_kind);
          OmpClause clause;
          clause.kind = e.clause_kind;
          clause.vars = e.clause_vars;
          clause.arg = e.clause_arg;
          d.clauses.push_back(std::move(clause));
        } else if (e.kind == EditKind::RemoveClause) {
          const std::size_t before = d.clauses.size();
          std::erase_if(d.clauses, [&](const OmpClause& c) {
            return c.kind == e.clause_kind;
          });
          if (d.clauses.size() == before) {
            fail("directive has no such clause");
            return r;
          }
        } else if (e.kind == EditKind::SetCriticalName) {
          if (d.kind != OmpDirectiveKind::Critical) {
            fail("not a critical directive");
            return r;
          }
          d.critical_name = e.name;
        } else {  // DemoteSimd
          std::erase_if(d.clauses, [](const OmpClause& c) {
            return c.kind == OmpClauseKind::Safelen ||
                   c.kind == OmpClauseKind::Linear;
          });
          if (d.kind == OmpDirectiveKind::ForSimd) {
            d.kind = OmpDirectiveKind::For;
          } else if (d.kind == OmpDirectiveKind::ParallelForSimd) {
            d.kind = OmpDirectiveKind::ParallelFor;
          } else if (d.kind == OmpDirectiveKind::Simd) {
            // A bare `simd` demotes to a plain sequential loop: the pragma
            // line disappears and the loop replaces the OmpStmt.
            StmtPtr* slot = nullptr;
            walk_unit(tu, [&](StmtPtr& s) {
              if (s.get() == static_cast<Stmt*>(omp)) {
                slot = &s;
                return true;
              }
              return false;
            });
            if (slot == nullptr || !omp->body) {
              fail("simd statement not replaceable");
              return r;
            }
            StmtPtr body = std::move(omp->body);
            *slot = std::move(body);
            ops.push_back({o, TextOp::Delete, ""});
            lm.dropped_trimmed.push_back(e.anchor.line);
            lm.dropped_original.push_back(o);
            lm.trimmed_events.push_back({e.anchor.line + 1, -1});
            lm.original_events.push_back({o + 1, -1});
            break;
          } else {
            fail("not a simd directive");
            return r;
          }
        }
        if (e.kind != EditKind::DemoteSimd ||
            (d.kind != OmpDirectiveKind::Simd)) {
          std::string text = indent_of(line_text(o)) + directive_to_string(d);
          const std::string comment = trailing_comment(line_text(o));
          if (!comment.empty()) text += " " + comment;
          ops.push_back({o, TextOp::Replace, std::move(text)});
        }
        break;
      }
      case EditKind::WrapStmt: {
        StmtPtr* slot = find_slot(tu, e.anchor);
        if (slot == nullptr) {
          fail("no statement at anchor");
          return r;
        }
        auto omp = std::make_unique<OmpStmt>();
        omp->directive.kind = e.directive_kind;
        if (e.directive_kind == OmpDirectiveKind::Critical) {
          omp->directive.critical_name = e.name;
        }
        const std::string pragma = directive_to_string(omp->directive);
        std::string err;
        if (auto* compound = stmt_cast<CompoundStmt>(slot->get())) {
          // Wrapping a block (e.g. a loop body whose `{` shares the `for`
          // line): wrap its *children* in a fresh block instead, so the
          // pragma and braces land on clean lines of their own.
          if (compound->body.empty()) {
            fail("cannot wrap an empty block");
            return r;
          }
          const SourceLoc floc = subtree_first_loc(*compound->body.front());
          const int last = subtree_last_line(*compound->body.back());
          const int ol = orig_line_of({last, 1});
          if (ol == 0) {
            fail("statement has no original lines");
            return r;
          }
          const std::string indent = indent_of(line_text(orig_line_of(floc)));
          if (!pragma_before_stmt(floc, {pragma, "{"}, &err)) {
            fail(err);
            return r;
          }
          insert_after(ol, last, indent + "}");
          auto inner = std::make_unique<CompoundStmt>();
          inner->body = std::move(compound->body);
          omp->body = std::move(inner);
          compound->body.clear();
          compound->body.push_back(std::move(omp));
        } else {
          const SourceLoc floc = subtree_first_loc(**slot);
          if (!pragma_before_stmt(floc, {pragma}, &err)) {
            fail(err);
            return r;
          }
          omp->body = std::move(*slot);
          *slot = std::move(omp);
        }
        break;
      }
      case EditKind::WrapLock: {
        const CompoundPos pos = find_compound_pos(tu, e.anchor);
        if (pos.compound == nullptr) {
          fail("statement is not a direct child of a block");
          return r;
        }
        Stmt& target = *pos.compound->body[pos.index];
        const SourceLoc floc = subtree_first_loc(target);
        const int last = subtree_last_line(target);
        const int of = orig_line_of(floc);
        const int ol = orig_line_of({last, 1});
        if (of == 0 || ol == 0) {
          fail("statement has no original lines");
          return r;
        }
        auto make_call = [&](const char* fn) {
          auto call = std::make_unique<Call>();
          call->callee = fn;
          auto ident = std::make_unique<Ident>();
          ident->name = e.name;
          auto addr = std::make_unique<Unary>();
          addr->op = UnaryOp::AddrOf;
          addr->operand = std::move(ident);
          call->args.push_back(std::move(addr));
          auto stmt = std::make_unique<ExprStmt>();
          stmt->expr = std::move(call);
          return stmt;
        };
        const std::string indent = indent_of(line_text(of));
        std::string err;
        if (!pragma_before_stmt(floc, {"omp_set_lock(&" + e.name + ");"},
                                &err)) {
          fail(err);
          return r;
        }
        insert_after(ol, last, indent + "omp_unset_lock(&" + e.name + ");");
        pos.compound->body.insert(
            pos.compound->body.begin() +
                static_cast<std::ptrdiff_t>(pos.index + 1),
            make_call("omp_unset_lock"));
        pos.compound->body.insert(
            pos.compound->body.begin() +
                static_cast<std::ptrdiff_t>(pos.index),
            make_call("omp_set_lock"));
        break;
      }
      case EditKind::InsertPragmaBefore: {
        const CompoundPos pos = find_compound_pos(tu, e.anchor);
        if (pos.compound == nullptr) {
          fail("statement is not a direct child of a block");
          return r;
        }
        Stmt& target = *pos.compound->body[pos.index];
        auto omp = std::make_unique<OmpStmt>();
        omp->directive.kind = e.directive_kind;
        std::string err;
        if (!pragma_before_stmt(subtree_first_loc(target),
                                {directive_to_string(omp->directive)},
                                &err)) {
          fail(err);
          return r;
        }
        pos.compound->body.insert(
            pos.compound->body.begin() +
                static_cast<std::ptrdiff_t>(pos.index),
            std::move(omp));
        break;
      }
    }
  }

  // Later lines first, so earlier op positions stay valid. Ties: append
  // after the line, then rewrite/delete it, then prepend before it.
  std::stable_sort(ops.begin(), ops.end(), [](const TextOp& a, const TextOp& b) {
    if (a.line != b.line) return a.line > b.line;
    return a.type < b.type;
  });
  for (const TextOp& op : ops) {
    const auto idx = static_cast<std::ptrdiff_t>(op.line);
    switch (op.type) {
      case TextOp::InsertAfter:
        lines.insert(lines.begin() + idx, op.text);
        break;
      case TextOp::Replace:
        lines[static_cast<std::size_t>(op.line - 1)] = op.text;
        break;
      case TextOp::Delete:
        lines.erase(lines.begin() + (idx - 1));
        break;
      case TextOp::InsertBefore:
        lines.insert(lines.begin() + (idx - 1), op.text);
        break;
    }
  }

  std::string patched;
  for (const auto& l : lines) {
    patched += l;
    patched += '\n';
  }
  if (!source.empty() && source.back() != '\n' && !patched.empty()) {
    patched.pop_back();
  }

  // Consistency gate: the textual route must parse to exactly the mutated
  // AST's canonical form, or the patch is rejected outright.
  std::string reparsed_form;
  try {
    const Program check = parse_program(patched);
    reparsed_form = unit_to_string(*check.unit);
  } catch (const Error& e) {
    r.message = std::string("patched text does not parse: ") + e.what();
    return r;
  }
  const std::string mutated_form = unit_to_string(tu);
  if (reparsed_form != mutated_form) {
    r.message = "textual and AST routes disagree";
    return r;
  }

  r.ok = true;
  r.patched = std::move(patched);
  r.line_map = std::move(lm);
  return r;
}

}  // namespace drbml::repair
