// Candidate generation: linter fix-its and static race pairs in, ranked
// structured patches out.
//
// Each DRB pattern family maps to a ladder of strategies (see DESIGN.md
// §9): data-sharing clauses (reduction/private/firstprivate/shared) are
// tried first, then synchronization (atomic, critical, locks, barrier,
// taskwait, nowait removal, critical-name unification), and finally
// serialization (ordered, simd demotion) as the semantics-preserving last
// resort. Candidates are ranked by cost; equal-cost candidates that attack
// a rule the pair's evidence chain shows failing (Patch::evidence_bias)
// come first, with the patch id as the final deterministic tie-breaker.
// The verified fix loop (repair.hpp) walks the ranking and keeps the
// first candidate that survives every gate.
#pragma once

#include <optional>
#include <string_view>
#include <vector>

#include "analysis/report.hpp"
#include "lint/diagnostic.hpp"
#include "minic/ast.hpp"
#include "repair/patch.hpp"

namespace drbml::repair {

enum class Strategy {
  Auto,       // every candidate class
  Lint,       // data-sharing clause fixes (lint fix-its + inferred reductions)
  Sync,       // mutual exclusion / ordering primitives
  Serialize,  // ordered serialization and simd demotion
};

[[nodiscard]] const char* strategy_name(Strategy s) noexcept;
[[nodiscard]] std::optional<Strategy> parse_strategy(
    std::string_view name) noexcept;

/// Generates ranked patch candidates for `prog` from the static race
/// evidence and (optionally) the linter's structured fix-its. The program
/// is resolved in place for access classification. Deterministic: same
/// inputs, same candidate list.
[[nodiscard]] std::vector<Patch> generate_candidates(
    minic::Program& prog, const analysis::RaceReport& races,
    const lint::LintReport* lint_report, Strategy strategy);

}  // namespace drbml::repair
