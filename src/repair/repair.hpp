// The verified fix loop (DR.FIX-style detector-guided repair).
//
// A candidate patch is accepted only when, on the patched program:
//   1. the static detector reports race-free;
//   2. the dynamic vector-clock detector finds no race and no fault across
//      every schedule seed;
//   3. the program is output-equivalent to the *serial* execution of the
//      original (num_threads=1 defines the intended semantics of a racy
//      program): same stdout bytes and exit code, serially and under every
//      parallel schedule. Gate 3 is what rejects "fixes" like privatizing
//      an accumulator -- they silence the detectors but change the answer.
//
// Everything is deterministic: fixed candidate ranking, fixed schedule
// seeds, no wall clock -- the same (source, options) always produces the
// same RepairResult, which is what makes the repair experiment cacheable
// and bit-identical at any job count.
#pragma once

#include <string>

#include "analysis/race.hpp"
#include "repair/candidates.hpp"
#include "repair/patch.hpp"
#include "runtime/dynamic.hpp"

namespace drbml::repair {

struct RepairOptions {
  Strategy strategy = Strategy::Auto;
  analysis::StaticDetectorOptions static_opts;
  runtime::DynamicDetectorOptions dynamic_opts;
  /// Cap on candidates tried per program.
  int max_candidates = 16;
  /// Gate 4 budget: an accepted fix must also survive this many PCT
  /// exploration schedules (randomized priorities probe interleavings
  /// the fixed-seed gate-2 replays never reach). 0 disables the gate.
  int explore_schedules = 6;
  /// PCT bug depth for gate 4.
  int explore_pct_depth = 3;
};

enum class RepairStatus {
  NoRaceDetected,  // neither detector fired; source returned untouched
  Fixed,           // a candidate survived every gate
  NoCandidate,     // race detected but no strategy applies
  Rejected,        // candidates existed; all failed verification
  Error,           // the program did not parse / analyze
};

[[nodiscard]] const char* repair_status_name(RepairStatus s) noexcept;

struct RepairResult {
  RepairStatus status = RepairStatus::Error;
  /// Patched source (== input for NoRaceDetected; empty otherwise unless
  /// Fixed).
  std::string patched;
  std::string patch_id;
  std::string description;
  std::string family;
  int candidates_generated = 0;
  /// Candidates applied+verified before accepting (the "patches per fix"
  /// metric); equals candidates tried when nothing was accepted.
  int attempts = 0;
  /// True when the output-equivalence gate actually ran (it cannot when
  /// the original program faults under serial execution).
  bool equivalence_checked = false;
  LineMap line_map;
  /// Structured reason for every non-Fixed status, e.g.
  /// "no-candidate: no strategy for this race shape".
  std::string message;

  friend bool operator==(const RepairResult&, const RepairResult&) = default;
};

/// Which verification gate rejected a candidate (the machine-readable
/// companion to VerifyOutcome::reason; also the repair.rejected.* metric
/// taxonomy).
enum class RejectGate {
  None,      // accepted
  Static,    // gate 1: static race persists, or static analysis failed
  Fault,     // gate 2: the patched program faulted
  Dynamic,   // gate 2: dynamic race persists, or dynamic verification failed
  Nondet,    // gate 2: output differs across parallel schedules
  Output,    // gate 3: serial output diverges from the original
  Explore,   // gate 4: PCT schedule exploration still finds a race
};

/// Verdict of the verification gates for one already-applied candidate.
struct VerifyOutcome {
  bool accepted = false;
  bool equivalence_checked = false;
  RejectGate gate = RejectGate::None;  // set iff !accepted
  std::string reason;  // which gate failed, when !accepted
};

/// Runs gates 1-3 on `patched` against `original` (exposed for tests; the
/// fix loop uses it internally). Never throws.
[[nodiscard]] VerifyOutcome verify_candidate(const std::string& original,
                                             const std::string& patched,
                                             const RepairOptions& opts);

/// The full loop: detect, generate ranked candidates, apply + verify until
/// one survives. Never throws.
[[nodiscard]] RepairResult repair_source(const std::string& source,
                                         const RepairOptions& opts = {});

/// Rewrites DRB "Data race pair:" header annotations so their
/// original-file line numbers track the patch's insertions/deletions
/// (repaired corpus entries keep scoring correctly).
[[nodiscard]] std::string remap_annotations(const std::string& patched,
                                            const LineMap& line_map);

/// Minimal unified diff (no context collapsing) between two sources, for
/// `drbml fix --diff`.
[[nodiscard]] std::string unified_diff(const std::string& before,
                                       const std::string& after);

}  // namespace drbml::repair
