// Structured patch engine over the Mini-C + OpenMP AST.
//
// A Patch is a small list of structured edits (add/remove a clause, wrap a
// statement under a new directive, insert a standalone pragma, bracket a
// statement with lock calls). Every patch is executed through *two*
// independent routes:
//
//   1. a textual line edit against the original source, so comments
//      (including `// drbml-lint-suppress(id)` directives), DRB header
//      annotations, and layout survive untouched;
//   2. an AST mutation of the parsed program, re-emitting edited pragma
//      lines through the printer's canonical renderer.
//
// The patched text is accepted only if re-parsing it produces exactly the
// canonical printed form of the mutated AST (`unit_to_string` equality) --
// the two routes cannot drift apart silently. Apply is deterministic: the
// same (source, patch) always yields the same bytes.
#pragma once

#include <string>
#include <vector>

#include "minic/ast.hpp"

namespace drbml::repair {

enum class EditKind {
  AddClause,           // append a clause to the directive at `anchor`
  RemoveClause,        // drop every clause of `clause_kind` at `anchor`
  SetCriticalName,     // rename the critical directive at `anchor`
  DemoteSimd,          // drop the simd-ness of the directive at `anchor`
  WrapStmt,            // wrap the statement at `anchor` under a directive
  WrapLock,            // bracket the statement at `anchor` with set/unset_lock
  InsertPragmaBefore,  // standalone pragma line before the stmt at `anchor`
};

[[nodiscard]] const char* edit_kind_name(EditKind k) noexcept;

struct Edit {
  EditKind kind = EditKind::AddClause;
  /// Trimmed-code location of the target: the directive's loc for clause
  /// edits, the statement's own loc for wrap/insert edits.
  minic::SourceLoc anchor;

  // Clause payload (AddClause / RemoveClause).
  minic::OmpClauseKind clause_kind = minic::OmpClauseKind::Private;
  std::vector<std::string> clause_vars;
  std::string clause_arg;  // reduction operator, ...

  // Directive payload (WrapStmt / InsertPragmaBefore).
  minic::OmpDirectiveKind directive_kind = minic::OmpDirectiveKind::Critical;

  /// Critical name (SetCriticalName / WrapStmt on critical) or the lock
  /// variable (WrapLock).
  std::string name;
};

/// A ranked repair candidate: one or more edits applied atomically.
struct Patch {
  std::string id;           // stable slug, e.g. "reduction(+:sum)@4"
  std::string description;  // human summary
  std::string family;       // DRB pattern family this patch targets
  int cost = 0;             // ranking key: smaller = preferred
  /// Secondary ranking key: 0 when the patch attacks a rule the race
  /// evidence chain shows failing (e.g. a lock wrap against a failed
  /// lockset.common step), 1 otherwise. Breaks cost ties only.
  int evidence_bias = 1;
  std::vector<Edit> edits;
};

/// Line renumbering induced by a patch, tracked in both coordinate
/// systems: trimmed-code lines (what DRB-ML labels and diagnostics use)
/// and original-file lines (what DRB header annotations use).
struct LineMap {
  struct Event {
    int line = 0;   // lines >= this shift ...
    int delta = 0;  // ... by this much

    friend bool operator==(const Event&, const Event&) = default;
  };
  std::vector<Event> trimmed_events;
  std::vector<Event> original_events;
  std::vector<int> dropped_trimmed;   // trimmed lines deleted by the patch
  std::vector<int> dropped_original;  // original lines deleted by the patch

  /// Maps a pre-patch trimmed line to its post-patch trimmed line
  /// (0 if the line was deleted).
  [[nodiscard]] int to_patched_trimmed(int line) const noexcept;
  /// Maps a pre-patch original line to its post-patch original line
  /// (0 if the line was deleted).
  [[nodiscard]] int to_patched_original(int line) const noexcept;

  friend bool operator==(const LineMap&, const LineMap&) = default;
};

struct ApplyResult {
  bool ok = false;
  std::string patched;  // full patched source, original coordinates
  LineMap line_map;
  std::string message;  // failure reason when !ok
};

/// Applies `patch` to `source` (see file comment for the two-route
/// consistency contract). Never throws; failures come back as !ok.
[[nodiscard]] ApplyResult apply_patch(const std::string& source,
                                      const Patch& patch);

// ---------------------------------------------------------------------------
// AST navigation shared between the applier and the candidate generator.

/// The chain of statements (outermost first) whose subtree contains a node
/// -- statement or expression -- located exactly at `loc`. Empty when no
/// node matches.
[[nodiscard]] std::vector<minic::Stmt*> stmt_chain_at(
    minic::TranslationUnit& tu, minic::SourceLoc loc);

/// Innermost statement in `chain` that is an OmpStmt forking a team or
/// distributing a loop (the region a data-sharing clause belongs on).
[[nodiscard]] minic::OmpStmt* enclosing_region(
    const std::vector<minic::Stmt*>& chain) noexcept;

/// First / last trimmed-code line covered by the statement subtree
/// (0 when the subtree carries no valid locations).
[[nodiscard]] int subtree_first_line(const minic::Stmt& s);
[[nodiscard]] int subtree_last_line(const minic::Stmt& s);

}  // namespace drbml::repair
