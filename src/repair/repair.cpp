#include "repair/repair.hpp"

#include <algorithm>
#include <cctype>

#include "dataset/drbml.hpp"
#include "explore/explore.hpp"
#include "lint/lint.hpp"
#include "minic/parser.hpp"
#include "obs/catalog.hpp"
#include "support/error.hpp"

namespace drbml::repair {

namespace {

std::vector<std::string> split_lines(const std::string& s) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t nl = s.find('\n', start);
    if (nl == std::string::npos) {
      if (start < s.size()) lines.push_back(s.substr(start));
      break;
    }
    lines.push_back(s.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

}  // namespace

const char* repair_status_name(RepairStatus s) noexcept {
  switch (s) {
    case RepairStatus::NoRaceDetected: return "no-race";
    case RepairStatus::Fixed: return "fixed";
    case RepairStatus::NoCandidate: return "no-candidate";
    case RepairStatus::Rejected: return "rejected";
    case RepairStatus::Error: return "error";
  }
  return "?";
}

namespace {

VerifyOutcome verify_candidate_impl(const std::string& original,
                                    const std::string& patched,
                                    const RepairOptions& opts) {
  VerifyOutcome out;

  // Gate 1: static detector must report race-free.
  try {
    const analysis::StaticRaceDetector sdet(opts.static_opts);
    if (sdet.analyze_source(patched).race_detected) {
      out.gate = RejectGate::Static;
      out.reason = "static detector still reports a race";
      return out;
    }
  } catch (const Error& e) {
    out.gate = RejectGate::Static;
    out.reason = std::string("static analysis failed: ") + e.what();
    return out;
  }

  // Reference semantics: the original program executed serially.
  runtime::DynamicDetectorOptions serial_opts = opts.dynamic_opts;
  serial_opts.run.num_threads = 1;
  const runtime::DynamicRaceDetector serial_det(serial_opts);
  bool have_ref = false;
  std::string ref_output;
  int ref_exit = 0;
  try {
    const runtime::RunResult ref =
        serial_det.run_once(original, serial_opts.run.seed);
    if (!ref.faulted) {
      have_ref = true;
      ref_output = ref.output;
      ref_exit = ref.exit_code;
    }
  } catch (const Error&) {
    // No serial reference; gates 2 still apply, gate 3 is skipped.
  }

  // Gate 2: every parallel schedule must be race-free and fault-free, and
  // all schedules must agree on output (the fix made the program
  // schedule-deterministic). The parallel output is NOT compared against
  // the serial reference -- programs whose answer legitimately depends on
  // the thread count (each thread increments a counter) would fail that.
  const runtime::DynamicRaceDetector ddet(opts.dynamic_opts);
  try {
    bool have_par = false;
    std::string par_output;
    int par_exit = 0;
    for (const std::uint64_t seed : opts.dynamic_opts.schedule_seeds) {
      const runtime::RunResult run = ddet.run_once(patched, seed);
      if (run.faulted) {
        out.gate = RejectGate::Fault;
        out.reason = "patched program faults: " + run.fault_message;
        return out;
      }
      if (run.report.race_detected) {
        out.gate = RejectGate::Dynamic;
        out.reason = "dynamic detector still reports a race (seed " +
                     std::to_string(seed) + ")";
        return out;
      }
      if (have_par &&
          (run.output != par_output || run.exit_code != par_exit)) {
        out.gate = RejectGate::Nondet;
        out.reason = "output not deterministic across schedules (seed " +
                     std::to_string(seed) + ")";
        return out;
      }
      have_par = true;
      par_output = run.output;
      par_exit = run.exit_code;
    }
    // Gate 3: serial semantics preserved -- the patched program run on one
    // thread must match the original run on one thread byte for byte.
    // This is what rejects patches like privatizing an accumulator: they
    // silence the detectors but change the answer even serially.
    if (have_ref) {
      const runtime::RunResult srun =
          serial_det.run_once(patched, serial_opts.run.seed);
      if (srun.faulted || srun.output != ref_output ||
          srun.exit_code != ref_exit) {
        out.gate = RejectGate::Output;
        out.reason = "serial output diverges from the original";
        return out;
      }
    }
  } catch (const Error& e) {
    out.gate = RejectGate::Dynamic;
    out.reason = std::string("dynamic verification failed: ") + e.what();
    return out;
  }

  // Gate 4: the fix must also survive randomized PCT schedule
  // exploration. Gate 2 replays a fixed handful of uniform seeds; PCT's
  // priority schedules reach order-dependent interleavings (e.g. races
  // hidden behind a lock-acquisition window) those replays never hit.
  if (opts.explore_schedules > 0) {
    try {
      explore::ExploreOptions eopts;
      eopts.run = opts.dynamic_opts.run;
      eopts.strategy = explore::Strategy::Pct;
      eopts.pct_depth = opts.explore_pct_depth;
      eopts.max_schedules = opts.explore_schedules;
      eopts.minimize = false;
      const explore::ExploreResult er =
          explore::explore_source(patched, eopts);
      if (er.race_detected) {
        out.gate = RejectGate::Explore;
        out.reason = "PCT exploration still finds a race (schedule " +
                     std::to_string(er.first_race_schedule + 1) + " of " +
                     std::to_string(opts.explore_schedules) + ")";
        return out;
      }
    } catch (const Error& e) {
      out.gate = RejectGate::Explore;
      out.reason = std::string("schedule exploration failed: ") + e.what();
      return out;
    }
  }

  out.accepted = true;
  out.equivalence_checked = have_ref;
  return out;
}

obs::Counter& reject_counter(RejectGate gate) {
  static obs::Counter& stat = obs::metrics().counter(obs::kRepairRejectedStatic);
  static obs::Counter& fault = obs::metrics().counter(obs::kRepairRejectedFault);
  static obs::Counter& dyn = obs::metrics().counter(obs::kRepairRejectedDynamic);
  static obs::Counter& nondet =
      obs::metrics().counter(obs::kRepairRejectedNondet);
  static obs::Counter& output =
      obs::metrics().counter(obs::kRepairRejectedOutput);
  static obs::Counter& explored =
      obs::metrics().counter(obs::kRepairRejectedExplore);
  switch (gate) {
    case RejectGate::Fault: return fault;
    case RejectGate::Dynamic: return dyn;
    case RejectGate::Nondet: return nondet;
    case RejectGate::Output: return output;
    case RejectGate::Explore: return explored;
    case RejectGate::Static:
    case RejectGate::None: break;
  }
  return stat;
}

}  // namespace

VerifyOutcome verify_candidate(const std::string& original,
                               const std::string& patched,
                               const RepairOptions& opts) {
  static obs::Counter& accepted = obs::metrics().counter(obs::kRepairAccepted);
  VerifyOutcome out;
  {
    obs::Span span(obs::kSpanRepairVerify);
    out = verify_candidate_impl(original, patched, opts);
  }
  if (out.accepted) {
    accepted.add();
  } else {
    reject_counter(out.gate).add();
  }
  return out;
}

RepairResult repair_source(const std::string& source,
                           const RepairOptions& opts) {
  static obs::Counter& candidates_tried =
      obs::metrics().counter(obs::kRepairCandidates);
  static obs::Counter& no_candidate =
      obs::metrics().counter(obs::kRepairNoCandidate);
  static obs::Counter& rejected_error =
      obs::metrics().counter(obs::kRepairRejectedError);
  obs::Span entry_span(obs::kSpanRepairEntry);
  RepairResult r;

  minic::Program prog;
  try {
    prog = minic::parse_program(source);
  } catch (const Error& e) {
    r.status = RepairStatus::Error;
    r.message = std::string("error: parse failed: ") + e.what();
    return r;
  }

  // Detection: does this program need repair at all?
  analysis::RaceReport static_report;
  try {
    const analysis::StaticRaceDetector sdet(opts.static_opts);
    static_report = sdet.analyze_source(source);
  } catch (const Error& e) {
    r.status = RepairStatus::Error;
    r.message = std::string("error: static analysis failed: ") + e.what();
    return r;
  }
  bool dynamic_race = false;
  try {
    const runtime::DynamicRaceDetector ddet(opts.dynamic_opts);
    dynamic_race = ddet.analyze_source(source).race_detected;
  } catch (const Error&) {
    // Non-executable programs (no main, faults) fall back to static-only.
  }
  if (!static_report.race_detected && !dynamic_race) {
    r.status = RepairStatus::NoRaceDetected;
    r.patched = source;
    return r;
  }

  // Linter fix-its seed the cheapest candidates.
  lint::LintReport lint_report;
  const lint::LintReport* lint_ptr = nullptr;
  try {
    const lint::Linter linter;
    lint_report = linter.lint_source(source);
    lint_ptr = &lint_report;
  } catch (const Error&) {
  }

  const std::vector<Patch> candidates =
      generate_candidates(prog, static_report, lint_ptr, opts.strategy);
  r.candidates_generated = static_cast<int>(candidates.size());
  if (candidates.empty()) {
    no_candidate.add();
    r.status = RepairStatus::NoCandidate;
    r.message = "no-candidate: no strategy applies to this race shape "
                "(strategy " +
                std::string(strategy_name(opts.strategy)) + ")";
    return r;
  }

  std::string last_reason;
  for (const Patch& patch : candidates) {
    if (r.attempts >= opts.max_candidates) break;
    ++r.attempts;
    candidates_tried.add();
    const ApplyResult applied = apply_patch(source, patch);
    if (!applied.ok) {
      rejected_error.add();
      last_reason = patch.id + ": " + applied.message;
      continue;
    }
    const std::string patched =
        remap_annotations(applied.patched, applied.line_map);
    const VerifyOutcome verdict = verify_candidate(source, patched, opts);
    if (!verdict.accepted) {
      last_reason = patch.id + ": " + verdict.reason;
      continue;
    }
    r.status = RepairStatus::Fixed;
    r.patched = patched;
    r.patch_id = patch.id;
    r.description = patch.description;
    r.family = patch.family;
    r.equivalence_checked = verdict.equivalence_checked;
    r.line_map = applied.line_map;
    return r;
  }

  r.status = RepairStatus::Rejected;
  r.message = "rejected: all " + std::to_string(r.attempts) +
              " candidate(s) failed verification (last: " + last_reason + ")";
  return r;
}

std::string remap_annotations(const std::string& patched,
                              const LineMap& line_map) {
  if (line_map.original_events.empty() && line_map.dropped_original.empty()) {
    return patched;
  }
  std::vector<std::string> lines = split_lines(patched);
  bool changed = false;
  for (auto& line : lines) {
    dataset::RawAnnotation ann;
    if (!dataset::parse_annotation(line, ann)) continue;
    const std::size_t start = line.find("Data race pair:");
    auto remap = [&](int l) {
      const int out = line_map.to_patched_original(l);
      return out > 0 ? out : l;
    };
    auto side = [&](const std::string& expr, int l, int c, char op) {
      return expr + "@" + std::to_string(remap(l)) + ":" + std::to_string(c) +
             ":" +
             std::string(1, static_cast<char>(std::toupper(
                                static_cast<unsigned char>(op))));
    };
    line = line.substr(0, start) + "Data race pair: " +
           side(ann.var1_expr, ann.var1_line, ann.var1_col, ann.var1_op) +
           " vs. " +
           side(ann.var0_expr, ann.var0_line, ann.var0_col, ann.var0_op);
    changed = true;
  }
  if (!changed) return patched;
  std::string out;
  for (const auto& l : lines) {
    out += l;
    out += '\n';
  }
  if (!patched.empty() && patched.back() != '\n' && !out.empty()) {
    out.pop_back();
  }
  return out;
}

std::string unified_diff(const std::string& before, const std::string& after) {
  const std::vector<std::string> a = split_lines(before);
  const std::vector<std::string> b = split_lines(after);
  const std::size_t n = a.size();
  const std::size_t m = b.size();

  // Longest common subsequence over lines (sources are small).
  std::vector<std::vector<int>> lcs(n + 1, std::vector<int>(m + 1, 0));
  for (std::size_t i = n; i-- > 0;) {
    for (std::size_t j = m; j-- > 0;) {
      lcs[i][j] = a[i] == b[j]
                      ? lcs[i + 1][j + 1] + 1
                      : std::max(lcs[i + 1][j], lcs[i][j + 1]);
    }
  }

  std::string out;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < n || j < m) {
    if (i < n && j < m && a[i] == b[j]) {
      out += " " + a[i] + "\n";
      ++i;
      ++j;
    } else if (j < m && (i == n || lcs[i][j + 1] >= lcs[i + 1][j])) {
      out += "+" + b[j] + "\n";
      ++j;
    } else {
      out += "-" + a[i] + "\n";
      ++i;
    }
  }
  return out;
}

}  // namespace drbml::repair
