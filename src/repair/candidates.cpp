#include "repair/candidates.hpp"

#include <algorithm>
#include <set>
#include <string>

#include "analysis/access.hpp"
#include "analysis/resolve.hpp"
#include "support/error.hpp"

namespace drbml::repair {

namespace {

using namespace minic;

/// Which strategy bucket a candidate belongs to (for --strategy filtering).
enum class Bucket { Lint, Sync, Serialize };

struct Candidate {
  Patch patch;
  Bucket bucket = Bucket::Sync;
};

std::string loc_tag(SourceLoc loc) { return std::to_string(loc.line); }

/// Innermost statement usable as a wrap target: walks the chain from the
/// inside out, skipping declarations (wrapping a DeclStmt would bury its
/// scope inside the new block) and never escaping the enclosing region.
Stmt* wrap_target(const std::vector<Stmt*>& chain, const OmpStmt* region) {
  std::size_t start = 0;
  if (region != nullptr) {
    for (std::size_t i = 0; i < chain.size(); ++i) {
      if (chain[i] == static_cast<const Stmt*>(region)) {
        start = i + 1;
        break;
      }
    }
  }
  for (std::size_t i = chain.size(); i-- > start;) {
    if (chain[i]->kind == StmtKind::Decl) continue;
    return chain[i];
  }
  return nullptr;
}

Stmt* innermost_expr_stmt(const std::vector<Stmt*>& chain) {
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    if ((*it)->kind == StmtKind::Expr) return *it;
  }
  return nullptr;
}

/// The enclosing `critical` construct, if any.
OmpStmt* enclosing_critical(const std::vector<Stmt*>& chain) {
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    if (auto* omp = stmt_cast<OmpStmt>(*it);
        omp != nullptr && omp->directive.kind == OmpDirectiveKind::Critical) {
      return omp;
    }
  }
  return nullptr;
}

OmpStmt* enclosing_simd(const std::vector<Stmt*>& chain) {
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    if (auto* omp = stmt_cast<OmpStmt>(*it)) {
      switch (omp->directive.kind) {
        case OmpDirectiveKind::Simd:
        case OmpDirectiveKind::ForSimd:
        case OmpDirectiveKind::ParallelForSimd:
          return omp;
        default:
          break;
      }
    }
  }
  return nullptr;
}

bool in_task(const std::vector<Stmt*>& chain) {
  for (Stmt* s : chain) {
    if (auto* omp = stmt_cast<OmpStmt>(s);
        omp != nullptr && omp->directive.kind == OmpDirectiveKind::Task) {
      return true;
    }
  }
  return false;
}

/// Reduction operator spelling implied by the update statement of `var`
/// ("" when the statement is not a recognizable reduction update).
std::string infer_reduction_op(const Stmt* stmt, const std::string& var) {
  const auto* es = stmt_cast<ExprStmt>(stmt);
  if (es == nullptr) return "";
  const Expr* e = es->expr.get();
  if (const auto* u = expr_cast<Unary>(e)) {
    const auto* id = expr_cast<Ident>(u->operand.get());
    if (id == nullptr || id->name != var) return "";
    if (u->op == UnaryOp::PreInc || u->op == UnaryOp::PostInc) return "+";
    if (u->op == UnaryOp::PreDec || u->op == UnaryOp::PostDec) return "-";
    return "";
  }
  const auto* a = expr_cast<Assign>(e);
  if (a == nullptr) return "";
  const auto* target = expr_cast<Ident>(a->target.get());
  if (target == nullptr || target->name != var) return "";
  switch (a->op) {
    case AssignOp::Add: return "+";
    case AssignOp::Sub: return "-";
    case AssignOp::Mul: return "*";
    case AssignOp::And: return "&";
    case AssignOp::Or: return "|";
    case AssignOp::Xor: return "^";
    case AssignOp::Assign: {
      const auto* b = expr_cast<Binary>(a->value.get());
      if (b == nullptr) return "";
      auto is_var = [&](const Expr* x) {
        const auto* id = expr_cast<Ident>(x);
        return id != nullptr && id->name == var;
      };
      if (!is_var(b->lhs.get()) && !is_var(b->rhs.get())) return "";
      switch (b->op) {
        case BinaryOp::Add: return "+";
        case BinaryOp::Mul: return "*";
        case BinaryOp::Sub: return is_var(b->lhs.get()) ? "-" : "";
        case BinaryOp::BitAnd: return "&";
        case BinaryOp::BitOr: return "|";
        case BinaryOp::BitXor: return "^";
        default: return "";
      }
    }
    default: return "";
  }
}

/// True when the expression statement has a shape `#pragma omp atomic`
/// accepts: `x op= e`, `x++`/`x--`, or `x = x op e`.
bool atomicable(const Stmt* stmt) {
  const auto* es = stmt_cast<ExprStmt>(stmt);
  if (es == nullptr) return false;
  const Expr* e = es->expr.get();
  if (const auto* u = expr_cast<Unary>(e)) {
    return u->op == UnaryOp::PreInc || u->op == UnaryOp::PostInc ||
           u->op == UnaryOp::PreDec || u->op == UnaryOp::PostDec;
  }
  const auto* a = expr_cast<Assign>(e);
  if (a == nullptr) return false;
  if (a->op != AssignOp::Assign) return true;  // compound assignment
  // Plain `x = x op e`: the target spelling must reappear in the value.
  const auto* b = expr_cast<Binary>(a->value.get());
  return b != nullptr;
}

const analysis::AccessInfo* find_access(
    const std::vector<analysis::ParallelRegion>& regions,
    const analysis::RaceAccess& ra) {
  for (const auto& reg : regions) {
    for (const auto& a : reg.accesses) {
      if (a.loc == ra.loc && a.is_write == (ra.op == 'w') &&
          a.text == ra.expr_text) {
        return &a;
      }
    }
  }
  for (const auto& reg : regions) {
    for (const auto& a : reg.accesses) {
      if (a.loc == ra.loc) return &a;
    }
  }
  return nullptr;
}

/// True when the evidence chain contains a non-discharged step whose rule
/// id starts with `prefix` -- i.e. the rule was consulted and failed.
bool failed_step(const analysis::Evidence& ev, const std::string& prefix) {
  for (const auto& s : ev.steps) {
    if (!s.discharged && s.rule.rfind(prefix, 0) == 0) return true;
  }
  return false;
}

/// True when the patch directly attacks a rule the evidence shows
/// failing: mutual exclusion against a failed lockset, a barrier against
/// a shared phase, a taskwait against unordered tasks, serialization or
/// data-sharing clauses against a feasible dependence.
bool attacks_evidence(const Patch& patch, const analysis::Evidence& ev) {
  for (const auto& e : patch.edits) {
    switch (e.kind) {
      case EditKind::WrapLock:
      case EditKind::SetCriticalName:
        if (failed_step(ev, "lockset.")) return true;
        break;
      case EditKind::WrapStmt:
        if ((e.directive_kind == OmpDirectiveKind::Critical ||
             e.directive_kind == OmpDirectiveKind::Atomic) &&
            failed_step(ev, "lockset.")) {
          return true;
        }
        if (e.directive_kind == OmpDirectiveKind::Ordered &&
            failed_step(ev, "dep.")) {
          return true;
        }
        break;
      case EditKind::InsertPragmaBefore:
        if (e.directive_kind == OmpDirectiveKind::Barrier &&
            failed_step(ev, "mhp.phase")) {
          return true;
        }
        if (e.directive_kind == OmpDirectiveKind::Taskwait &&
            failed_step(ev, "mhp.task")) {
          return true;
        }
        break;
      case EditKind::RemoveClause:
        // Dropping nowait restores the implicit barrier phases.
        if (e.clause_kind == OmpClauseKind::Nowait &&
            failed_step(ev, "mhp.phase")) {
          return true;
        }
        break;
      case EditKind::AddClause:
        // Privatization/reduction removes the conflicting shared access
        // the dependence test found feasible.
        if ((e.clause_kind == OmpClauseKind::Reduction ||
             e.clause_kind == OmpClauseKind::Private ||
             e.clause_kind == OmpClauseKind::FirstPrivate ||
             e.clause_kind == OmpClauseKind::LastPrivate) &&
            failed_step(ev, "dep.")) {
          return true;
        }
        if (e.clause_kind == OmpClauseKind::Ordered &&
            failed_step(ev, "dep.")) {
          return true;
        }
        break;
      case EditKind::DemoteSimd:
        if (failed_step(ev, "dep.")) return true;
        break;
    }
  }
  return false;
}

class Generator {
 public:
  Generator(minic::Program& prog, const analysis::RaceReport& races,
            const lint::LintReport* lint_report)
      : prog_(prog), races_(races), lint_(lint_report) {
    try {
      res_ = analysis::resolve(*prog_.unit);
      regions_ = analysis::collect_regions(*prog_.unit, res_);
    } catch (const Error&) {
      // Unresolvable programs still get chain-based candidates.
    }
  }

  std::vector<Candidate> run() {
    if (lint_ != nullptr) from_lint();
    for (const auto& pair : races_.pairs) from_pair(pair);
    return std::move(out_);
  }

 private:
  void add(Bucket bucket, Patch patch) {
    if (ev_ != nullptr && attacks_evidence(patch, *ev_)) {
      patch.evidence_bias = 0;
    }
    std::string sig;
    for (const auto& e : patch.edits) {
      sig += edit_kind_name(e.kind);
      sig += '@' + std::to_string(e.anchor.line) + ':' +
             std::to_string(e.anchor.col);
      sig += ';' + std::to_string(static_cast<int>(e.clause_kind));
      for (const auto& v : e.clause_vars) sig += ',' + v;
      sig += ';' + e.clause_arg;
      sig += ';' + std::to_string(static_cast<int>(e.directive_kind));
      sig += ';' + e.name + '|';
    }
    if (!seen_.insert(sig).second) return;
    out_.push_back({std::move(patch), bucket});
  }

  Patch clause_patch(const OmpStmt& region, OmpClauseKind kind,
                     const std::string& var, const std::string& arg,
                     const std::string& spelled, const std::string& family,
                     int cost) {
    Patch p;
    Edit e;
    e.kind = EditKind::AddClause;
    e.anchor = region.directive.loc;
    e.clause_kind = kind;
    e.clause_vars = {var};
    e.clause_arg = arg;
    p.edits.push_back(std::move(e));
    p.id = spelled + "@" + loc_tag(region.directive.loc);
    p.description = "add " + spelled + " to the parallel construct at line " +
                    loc_tag(region.directive.loc);
    p.family = family;
    p.cost = cost;
    return p;
  }

  void from_lint() {
    for (const auto& d : lint_->diagnostics) {
      if (d.fixit.empty()) continue;
      auto chain = stmt_chain_at(*prog_.unit, d.loc);
      OmpStmt* region = enclosing_region(chain);
      const std::string& fx = d.fixit;
      auto clause_arg_of = [&](std::size_t open) {
        return fx.substr(open + 1, fx.rfind(')') - open - 1);
      };
      if (fx.rfind("reduction(", 0) == 0 && region != nullptr) {
        const std::string inner = clause_arg_of(fx.find('('));
        const std::size_t colon = inner.find(':');
        if (colon == std::string::npos) continue;
        add(Bucket::Lint,
            clause_patch(*region, OmpClauseKind::Reduction,
                         inner.substr(colon + 1), inner.substr(0, colon), fx,
                         d.pattern, 1));
      } else if (fx.rfind("private(", 0) == 0 && region != nullptr) {
        const std::string var = clause_arg_of(fx.find('('));
        add(Bucket::Lint, clause_patch(*region, OmpClauseKind::Private, var,
                                       "", fx, d.pattern, 2));
        add(Bucket::Lint,
            clause_patch(*region, OmpClauseKind::LastPrivate, var, "",
                         "lastprivate(" + var + ")", d.pattern, 3));
      } else if (fx.rfind("firstprivate(", 0) == 0 && region != nullptr) {
        add(Bucket::Lint,
            clause_patch(*region, OmpClauseKind::FirstPrivate,
                         clause_arg_of(fx.find('(')), "", fx, d.pattern, 2));
      } else if (fx.rfind("shared(", 0) == 0 && region != nullptr) {
        add(Bucket::Lint,
            clause_patch(*region, OmpClauseKind::Shared,
                         clause_arg_of(fx.find('(')), "", fx, d.pattern, 2));
      } else if (fx == "#pragma omp atomic") {
        Stmt* stmt = innermost_expr_stmt(chain);
        if (stmt == nullptr || !atomicable(stmt)) continue;
        add_wrap(Bucket::Sync, {stmt}, OmpDirectiveKind::Atomic, "",
                 d.pattern, 3);
      } else if (fx == "#pragma omp barrier" && !d.related.empty()) {
        // Preferred: drop the nowait clause that created the stale read.
        const SourceLoc dir_loc = d.related.front().loc;
        Patch p;
        Edit e;
        e.kind = EditKind::RemoveClause;
        e.anchor = dir_loc;
        e.clause_kind = OmpClauseKind::Nowait;
        p.edits.push_back(std::move(e));
        p.id = "remove-nowait@" + loc_tag(dir_loc);
        p.description =
            "remove the nowait clause at line " + loc_tag(dir_loc);
        p.family = d.pattern;
        p.cost = 2;
        add(Bucket::Sync, std::move(p));
      }
    }
  }

  void add_wrap(Bucket bucket, const std::vector<Stmt*>& stmts,
                OmpDirectiveKind kind, const std::string& name,
                const std::string& family, int cost) {
    Patch p;
    std::string tag;
    for (Stmt* s : stmts) {
      Edit e;
      e.kind = EditKind::WrapStmt;
      e.anchor = s->loc;
      e.directive_kind = kind;
      e.name = name;
      p.edits.push_back(std::move(e));
      if (!tag.empty()) tag += "+";
      tag += loc_tag(s->loc);
    }
    p.id = omp_directive_kind_name(kind) + "@" + tag;
    p.description = "wrap statement(s) at line " + tag + " in `#pragma omp " +
                    omp_directive_kind_name(kind) + "`";
    p.family = family;
    p.cost = cost;
    add(bucket, std::move(p));
  }

  void from_pair(const analysis::RacePair& pair) {
    ev_ = &pair.evidence;
    auto chain_a = stmt_chain_at(*prog_.unit, pair.first.loc);
    auto chain_b = stmt_chain_at(*prog_.unit, pair.second.loc);
    if (chain_a.empty() && chain_b.empty()) return;
    if (chain_a.empty()) chain_a = chain_b;
    OmpStmt* region = enclosing_region(chain_a);
    if (region == nullptr && !chain_b.empty()) {
      region = enclosing_region(chain_b);
    }
    const std::string family = pair.note.empty() ? "race-pair" : pair.note;
    const analysis::AccessInfo* ai = find_access(regions_, pair.first);
    const analysis::AccessInfo* bi = find_access(regions_, pair.second);

    // Scalar accumulation -> reduction clause.
    if (region != nullptr && pair.first.var_name == pair.second.var_name &&
        pair.first.expr_text == pair.first.var_name) {
      const std::vector<Stmt*>& wchain =
          pair.first.op == 'w' ? chain_a : chain_b;
      std::string op;
      if (Stmt* stmt = innermost_expr_stmt(wchain)) {
        op = infer_reduction_op(stmt, pair.first.var_name);
      }
      if (!op.empty()) {
        add(Bucket::Lint,
            clause_patch(*region, OmpClauseKind::Reduction,
                         pair.first.var_name, op,
                         "reduction(" + op + ":" + pair.first.var_name + ")",
                         "missing-reduction", 1));
      }
    }

    // A nowait clause anywhere on the enclosing constructs.
    for (const auto* chain : {&chain_a, &chain_b}) {
      for (Stmt* s : *chain) {
        auto* omp = stmt_cast<OmpStmt>(s);
        if (omp == nullptr ||
            !omp->directive.has_clause(OmpClauseKind::Nowait)) {
          continue;
        }
        Patch p;
        Edit e;
        e.kind = EditKind::RemoveClause;
        e.anchor = omp->directive.loc;
        e.clause_kind = OmpClauseKind::Nowait;
        p.edits.push_back(std::move(e));
        p.id = "remove-nowait@" + loc_tag(omp->directive.loc);
        p.description =
            "remove the nowait clause at line " + loc_tag(omp->directive.loc);
        p.family = "nowait";
        p.cost = 2;
        add(Bucket::Sync, std::move(p));
      }
    }

    // Differently-named critical sections guarding the two sides.
    {
      OmpStmt* ca = enclosing_critical(chain_a);
      OmpStmt* cb = chain_b.empty() ? nullptr : enclosing_critical(chain_b);
      if (ca != nullptr && cb != nullptr && ca != cb &&
          ca->directive.critical_name != cb->directive.critical_name) {
        Patch p;
        for (OmpStmt* c : {ca, cb}) {
          Edit e;
          e.kind = EditKind::SetCriticalName;
          e.anchor = c->directive.loc;
          e.name = ca->directive.critical_name;
          p.edits.push_back(std::move(e));
        }
        p.id = "unify-critical@" + loc_tag(ca->directive.loc) + "+" +
               loc_tag(cb->directive.loc);
        p.description = "unify the critical section names at lines " +
                        loc_tag(ca->directive.loc) + " and " +
                        loc_tag(cb->directive.loc);
        p.family = "different-critical-names";
        p.cost = 2;
        add(Bucket::Sync, std::move(p));
      }
    }

    // Atomic update on every non-atomic write side.
    {
      std::vector<Stmt*> targets;
      auto consider = [&](const std::vector<Stmt*>& chain,
                          const analysis::RaceAccess& ra,
                          const analysis::AccessInfo* info) {
        if (chain.empty() || ra.op != 'w') return;
        if (info != nullptr && info->ctx.atomic) return;
        Stmt* stmt = innermost_expr_stmt(chain);
        if (stmt == nullptr || !atomicable(stmt)) return;
        if (std::find(targets.begin(), targets.end(), stmt) ==
            targets.end()) {
          targets.push_back(stmt);
        }
      };
      consider(chain_a, pair.first, ai);
      consider(chain_b, pair.second, bi);
      if (!targets.empty()) {
        add_wrap(Bucket::Sync, targets, OmpDirectiveKind::Atomic, "", family,
                 3);
      }
    }

    // One side under an omp lock, the other bare: bracket the bare side.
    {
      auto locked = [&](const analysis::AccessInfo* i) {
        return i != nullptr && !i->ctx.locks.empty();
      };
      const analysis::AccessInfo* with = nullptr;
      const std::vector<Stmt*>* bare_chain = nullptr;
      const analysis::AccessInfo* bare = nullptr;
      if (locked(ai) && !locked(bi)) {
        with = ai;
        bare = bi;
        bare_chain = &chain_b;
      } else if (locked(bi) && !locked(ai)) {
        with = bi;
        bare = ai;
        bare_chain = &chain_a;
      }
      if (with != nullptr && bare != nullptr && bare_chain != nullptr &&
          !bare_chain->empty()) {
        if (Stmt* stmt = wrap_target(*bare_chain, region)) {
          const std::string lock = with->ctx.locks.front()->name;
          Patch p;
          Edit e;
          e.kind = EditKind::WrapLock;
          e.anchor = stmt->loc;
          e.name = lock;
          p.edits.push_back(std::move(e));
          p.id = "lock(" + lock + ")@" + loc_tag(stmt->loc);
          p.description = "guard the statement at line " + loc_tag(stmt->loc) +
                          " with omp_set_lock/omp_unset_lock(&" + lock + ")";
          p.family = "lock-partial";
          p.cost = 4;
          add(Bucket::Sync, std::move(p));
        }
      }
    }

    // Critical section around both sides (one edit when they share a
    // statement or one contains the other).
    {
      Stmt* ta = wrap_target(chain_a, region);
      Stmt* tb = chain_b.empty() ? nullptr : wrap_target(chain_b, region);
      std::vector<Stmt*> targets;
      if (ta != nullptr) targets.push_back(ta);
      if (tb != nullptr && tb != ta) {
        const bool nested =
            std::find(chain_a.begin(), chain_a.end(), tb) != chain_a.end() ||
            (ta != nullptr &&
             std::find(chain_b.begin(), chain_b.end(), ta) != chain_b.end());
        if (!nested) targets.push_back(tb);
      }
      if (!targets.empty()) {
        add_wrap(Bucket::Sync, targets, OmpDirectiveKind::Critical, "",
                 family, 4);
      }
    }

    // Task vs. non-task access: a taskwait in front of the non-task side.
    {
      const bool task_a = in_task(chain_a);
      const bool task_b = !chain_b.empty() && in_task(chain_b);
      const std::vector<Stmt*>* plain = nullptr;
      if (task_a && !task_b && !chain_b.empty()) plain = &chain_b;
      if (task_b && !task_a) plain = &chain_a;
      if (plain != nullptr) {
        if (Stmt* stmt = wrap_target(*plain, nullptr)) {
          Patch p;
          Edit e;
          e.kind = EditKind::InsertPragmaBefore;
          e.anchor = stmt->loc;
          e.directive_kind = OmpDirectiveKind::Taskwait;
          p.edits.push_back(std::move(e));
          p.id = "taskwait@" + loc_tag(stmt->loc);
          p.description = "insert `#pragma omp taskwait` before line " +
                          loc_tag(stmt->loc);
          p.family = "missing-taskwait";
          p.cost = 3;
          add(Bucket::Sync, std::move(p));
        }
      }
    }

    // Sibling statements inside one parallel region: a barrier between.
    if (region != nullptr && region->directive.forks_team() &&
        !chain_b.empty()) {
      // Lowest common ancestor; the later branch gets the barrier.
      std::size_t common = 0;
      while (common < chain_a.size() && common < chain_b.size() &&
             chain_a[common] == chain_b[common]) {
        ++common;
      }
      if (common > 0 && common < chain_a.size() && common < chain_b.size() &&
          chain_a[common - 1]->kind == StmtKind::Compound) {
        Stmt* first_branch = chain_a[common];
        Stmt* second_branch = chain_b[common];
        if (second_branch->loc.line < first_branch->loc.line) {
          std::swap(first_branch, second_branch);
        }
        Patch p;
        Edit e;
        e.kind = EditKind::InsertPragmaBefore;
        e.anchor = second_branch->loc;
        e.directive_kind = OmpDirectiveKind::Barrier;
        p.edits.push_back(std::move(e));
        p.id = "barrier@" + loc_tag(second_branch->loc);
        p.description = "insert `#pragma omp barrier` before line " +
                        loc_tag(second_branch->loc);
        p.family = "barrier";
        p.cost = 4;
        add(Bucket::Sync, std::move(p));
      }
    }

    // Ordered serialization of a worksharing loop.
    if (region != nullptr && region->directive.is_worksharing_loop() &&
        !region->directive.has_clause(OmpClauseKind::Ordered)) {
      Stmt* target = nullptr;
      if (!chain_b.empty()) {
        std::size_t common = 0;
        while (common < chain_a.size() && common < chain_b.size() &&
               chain_a[common] == chain_b[common]) {
          ++common;
        }
        if (common > 0) target = chain_a[common - 1];
      } else {
        target = wrap_target(chain_a, region);
      }
      // Never wrap the loop construct itself; fall back to its body.
      auto* loop = stmt_cast<ForStmt>(region->body.get());
      if (loop != nullptr &&
          (target == nullptr || target == static_cast<Stmt*>(region) ||
           target == static_cast<Stmt*>(loop) ||
           target->kind == StmtKind::Decl)) {
        target = loop->body.get();
      }
      if (target != nullptr && target->loc.valid()) {
        Patch p;
        Edit add_ordered;
        add_ordered.kind = EditKind::AddClause;
        add_ordered.anchor = region->directive.loc;
        add_ordered.clause_kind = OmpClauseKind::Ordered;
        p.edits.push_back(std::move(add_ordered));
        Edit wrap;
        wrap.kind = EditKind::WrapStmt;
        wrap.anchor = target->loc;
        wrap.directive_kind = OmpDirectiveKind::Ordered;
        p.edits.push_back(std::move(wrap));
        p.id = "ordered@" + loc_tag(target->loc);
        p.description =
            "serialize the racing statements with an ordered clause and "
            "`#pragma omp ordered` at line " +
            loc_tag(target->loc);
        p.family = family;
        p.cost = 8;
        add(Bucket::Serialize, std::move(p));
      }
    }

    // Simd demotion as the last resort for vector-lane races.
    for (const auto* chain : {&chain_a, &chain_b}) {
      if (OmpStmt* simd = enclosing_simd(*chain)) {
        Patch p;
        Edit e;
        e.kind = EditKind::DemoteSimd;
        e.anchor = simd->directive.loc;
        p.edits.push_back(std::move(e));
        p.id = "demote-simd@" + loc_tag(simd->directive.loc);
        p.description = "drop the simd directive at line " +
                        loc_tag(simd->directive.loc);
        p.family = "simd";
        p.cost = 9;
        add(Bucket::Serialize, std::move(p));
      }
    }
  }

  minic::Program& prog_;
  const analysis::RaceReport& races_;
  const lint::LintReport* lint_;
  /// Evidence of the pair currently being expanded (nullptr during
  /// lint-driven generation, which carries no chain).
  const analysis::Evidence* ev_ = nullptr;
  analysis::Resolution res_;
  std::vector<analysis::ParallelRegion> regions_;
  std::set<std::string> seen_;
  std::vector<Candidate> out_;
};

}  // namespace

const char* strategy_name(Strategy s) noexcept {
  switch (s) {
    case Strategy::Auto: return "auto";
    case Strategy::Lint: return "lint";
    case Strategy::Sync: return "sync";
    case Strategy::Serialize: return "serialize";
  }
  return "?";
}

std::optional<Strategy> parse_strategy(std::string_view name) noexcept {
  if (name == "auto") return Strategy::Auto;
  if (name == "lint") return Strategy::Lint;
  if (name == "sync") return Strategy::Sync;
  if (name == "serialize") return Strategy::Serialize;
  return std::nullopt;
}

std::vector<Patch> generate_candidates(minic::Program& prog,
                                       const analysis::RaceReport& races,
                                       const lint::LintReport* lint_report,
                                       Strategy strategy) {
  Generator gen(prog, races, lint_report);
  std::vector<Candidate> all = gen.run();
  std::vector<Patch> out;
  for (auto& c : all) {
    const bool keep =
        strategy == Strategy::Auto ||
        (strategy == Strategy::Lint && c.bucket == Bucket::Lint) ||
        (strategy == Strategy::Sync && c.bucket == Bucket::Sync) ||
        (strategy == Strategy::Serialize && c.bucket == Bucket::Serialize);
    if (keep) out.push_back(std::move(c.patch));
  }
  std::stable_sort(out.begin(), out.end(), [](const Patch& a, const Patch& b) {
    if (a.cost != b.cost) return a.cost < b.cost;
    // Among equal-cost candidates, prefer the one that attacks a rule
    // the evidence chain shows failing for the pair it repairs.
    if (a.evidence_bias != b.evidence_bias) {
      return a.evidence_bias < b.evidence_bias;
    }
    return a.id < b.id;
  });
  return out;
}

}  // namespace drbml::repair
