// Emitters for lint reports: human-readable text, JSON, and SARIF 2.1.0.
//
// SARIF invariants (checked by sarif_shape_ok and the differential tests):
//   - top level carries "$schema" and "version": "2.1.0";
//   - runs[0].tool.driver.name is "drbml-lint" and driver.rules lists every
//     built-in check, so each result's ruleIndex resolves;
//   - every result has ruleId, level, message.text, and exactly one
//     location whose region start is >= 1 (file-level diagnostics clamp
//     to line 1, SARIF forbids line 0);
//   - fix-its and pattern families ride in result.properties so they
//     survive consumers that ignore the optional "fixes" field.
#pragma once

#include <string>
#include <vector>

#include "lint/diagnostic.hpp"
#include "support/json.hpp"

namespace drbml::lint {

/// A lint report tagged with the artifact name it was produced from.
struct FileLint {
  std::string name;  // artifact URI in SARIF, prefix in text output
  LintReport report;
};

/// One diagnostic as a single human-readable line (no related locations);
/// used by the lint detector to surface findings in RaceVerdict diagnostics.
[[nodiscard]] std::string to_text_line(const Diagnostic& d);

/// Full human-readable rendering: one block per diagnostic (location,
/// severity, check id, message, related notes, fix-it), then a summary.
[[nodiscard]] std::string to_text(const FileLint& file);

/// JSON rendering of one file's report (diagnostics + summary counts).
[[nodiscard]] json::Value to_json(const FileLint& file);

/// SARIF 2.1.0 log covering all files as one run.
[[nodiscard]] json::Value to_sarif(const std::vector<FileLint>& files);

/// Validates the invariants listed above on a SARIF document. On failure
/// returns false and, when `why` is non-null, stores the first violation.
[[nodiscard]] bool sarif_shape_ok(const json::Value& sarif,
                                  std::string* why = nullptr);

}  // namespace drbml::lint
