// The built-in lint checks.
//
// Every check reads the shared LintContext (parsed program, resolution,
// collected parallel regions with annotated accesses, static race
// report) and appends structured Diagnostics. Checks are explanatory:
// where the static race detector answers "is there a conflicting pair",
// these passes answer "which OpenMP construct is misused and what clause
// fixes it", mirroring what ompVerify/LLOV-style verifiers report.
//
// Check id -> DRB pattern families (see DESIGN.md section 8):
//   lint.race       race pairs + cap-truncation note (all racy families)
//   lint.datashare  missing-private / firstprivate-missing / default-none
//   lint.reduction  missing-reduction (fix-it: reduction(op:var))
//   lint.lock       omp-lock / lock-partial discipline
//   lint.barrier    barrier nesting/asymmetry + nowait misuse
//   lint.atomic     atomic-plus-plain / different-critical-names /
//                   atomic-critical-mix / lock-partial consistency
#include <algorithm>
#include <map>
#include <set>
#include <tuple>

#include "lint/pass.hpp"
#include "minic/printer.hpp"
#include "support/strings.hpp"

namespace drbml::lint {

using namespace minic;
using analysis::AccessInfo;
using analysis::ParallelRegion;
using analysis::Sharing;

namespace {

// ---------------------------------------------------------------- helpers

std::string loc_str(const SourceLoc& loc) {
  return std::to_string(loc.line) + ":" + std::to_string(loc.col);
}

std::string directive_text(const OmpDirective& dir) {
  return "#pragma omp " + omp_directive_kind_name(dir.kind);
}

const Stmt* unwrap_single(const Stmt* s) {
  while (const auto* block = stmt_cast<CompoundStmt>(s)) {
    if (block->body.size() != 1) break;
    s = block->body[0].get();
  }
  return s;
}

/// Clause-item base name ("a[0:n]" -> "a").
std::string clause_base_name(const std::string& item) {
  const std::size_t bracket = item.find('[');
  return bracket == std::string::npos ? item : item.substr(0, bracket);
}

bool is_scalar(const VarDecl& v) {
  return !v.is_array() && !v.type.is_pointer();
}

/// An access with no mutual-exclusion context at all.
bool unprotected(const analysis::SyncContext& c) {
  return !c.atomic && !c.in_critical && !c.ordered && c.locks.empty() &&
         c.exec_once_id == -1;
}

/// Finds the collected access matching (var, ident location, direction);
/// null when collection skipped it.
const AccessInfo* find_access(const ParallelRegion& region, const VarDecl* var,
                              const SourceLoc& loc, bool is_write) {
  for (const auto& a : region.accesses) {
    if (a.var == var && a.loc == loc && a.is_write == is_write) return &a;
  }
  return nullptr;
}

// -------------------------------------------- accumulation recognition

/// A recognized reduction-shaped update of a scalar.
struct Accumulation {
  const VarDecl* var = nullptr;
  SourceLoc loc;          // location of the updated identifier
  std::string op_clause;  // OpenMP reduction operator: + * - & | ^ && || max min
};

const char* assign_op_clause(AssignOp op) {
  switch (op) {
    case AssignOp::Add: return "+";
    case AssignOp::Sub: return "-";
    case AssignOp::Mul: return "*";
    case AssignOp::And: return "&";
    case AssignOp::Or: return "|";
    case AssignOp::Xor: return "^";
    default: return nullptr;
  }
}

const char* binary_op_clause(BinaryOp op) {
  switch (op) {
    case BinaryOp::Add: return "+";
    case BinaryOp::Sub: return "-";
    case BinaryOp::Mul: return "*";
    case BinaryOp::BitAnd: return "&";
    case BinaryOp::BitOr: return "|";
    case BinaryOp::BitXor: return "^";
    case BinaryOp::LogicalAnd: return "&&";
    case BinaryOp::LogicalOr: return "||";
    default: return nullptr;
  }
}

/// Matches `x = x op e` / `x = e op x` (commutative ops only on the right).
const char* self_update_clause(const Assign& a, const VarDecl* target) {
  const auto* b = expr_cast<Binary>(a.value.get());
  if (b == nullptr) return nullptr;
  const char* clause = binary_op_clause(b->op);
  if (clause == nullptr) return nullptr;
  const auto* lhs = expr_cast<Ident>(b->lhs.get());
  if (lhs != nullptr && lhs->decl == target) return clause;
  const auto* rhs = expr_cast<Ident>(b->rhs.get());
  if (rhs != nullptr && rhs->decl == target && b->op != BinaryOp::Sub) {
    return clause;
  }
  return nullptr;
}

/// Matches `if (cmp) x = e;` min/max folds. Returns "max"/"min"/nullptr
/// and fills `var`/`loc`.
const char* match_minmax(const IfStmt& s, const VarDecl** var, SourceLoc* loc) {
  if (s.else_branch != nullptr) return nullptr;
  const auto* cond = expr_cast<Binary>(s.cond.get());
  if (cond == nullptr) return nullptr;
  const auto* then_stmt = stmt_cast<ExprStmt>(unwrap_single(s.then_branch.get()));
  if (then_stmt == nullptr) return nullptr;
  const auto* assign = expr_cast<Assign>(then_stmt->expr.get());
  if (assign == nullptr || assign->op != AssignOp::Assign) return nullptr;
  const auto* target = expr_cast<Ident>(assign->target.get());
  if (target == nullptr || target->decl == nullptr) return nullptr;

  // One comparison side must be the target, the other must equal the
  // assigned value textually.
  const auto* cl = expr_cast<Ident>(cond->lhs.get());
  const auto* cr = expr_cast<Ident>(cond->rhs.get());
  const std::string value_text = expr_to_string(*assign->value);
  bool target_on_lhs;
  const Expr* other = nullptr;
  if (cl != nullptr && cl->decl == target->decl) {
    target_on_lhs = true;
    other = cond->rhs.get();
  } else if (cr != nullptr && cr->decl == target->decl) {
    target_on_lhs = false;
    other = cond->lhs.get();
  } else {
    return nullptr;
  }
  if (expr_to_string(*other) != value_text) return nullptr;

  *var = target->decl;
  *loc = target->loc;
  switch (cond->op) {
    case BinaryOp::Lt:
    case BinaryOp::Le:
      return target_on_lhs ? "max" : "min";  // x < e: e is larger -> max
    case BinaryOp::Gt:
    case BinaryOp::Ge:
      return target_on_lhs ? "min" : "max";
    default:
      return nullptr;
  }
}

class AccumulationFinder {
 public:
  std::vector<Accumulation> find(const Stmt& root) {
    walk(root);
    return std::move(found_);
  }

 private:
  void add(const VarDecl* var, const SourceLoc& loc, const char* clause) {
    if (var == nullptr || !is_scalar(*var)) return;
    found_.push_back({var, loc, clause});
  }

  void walk_expr_stmt(const Expr& e) {
    if (const auto* a = expr_cast<Assign>(&e)) {
      const auto* target = expr_cast<Ident>(a->target.get());
      if (target == nullptr || target->decl == nullptr) return;
      if (const char* clause = assign_op_clause(a->op)) {
        add(target->decl, target->loc, clause);
      } else if (a->op == AssignOp::Assign) {
        if (const char* c = self_update_clause(*a, target->decl)) {
          add(target->decl, target->loc, c);
        }
      }
      return;
    }
    if (const auto* u = expr_cast<Unary>(&e)) {
      if (u->op == UnaryOp::PreInc || u->op == UnaryOp::PostInc ||
          u->op == UnaryOp::PreDec || u->op == UnaryOp::PostDec) {
        const auto* target = expr_cast<Ident>(u->operand.get());
        if (target != nullptr && target->decl != nullptr) {
          const bool inc =
              u->op == UnaryOp::PreInc || u->op == UnaryOp::PostInc;
          add(target->decl, target->loc, inc ? "+" : "-");
        }
      }
    }
  }

  void walk(const Stmt& s) {
    switch (s.kind) {
      case StmtKind::Expr:
        walk_expr_stmt(*static_cast<const ExprStmt&>(s).expr);
        break;
      case StmtKind::Compound:
        for (const auto& st : static_cast<const CompoundStmt&>(s).body) {
          walk(*st);
        }
        break;
      case StmtKind::If: {
        const auto& i = static_cast<const IfStmt&>(s);
        const VarDecl* var = nullptr;
        SourceLoc loc;
        if (const char* clause = match_minmax(i, &var, &loc)) {
          add(var, loc, clause);
          break;  // the then-branch assignment is the fold; don't re-walk
        }
        walk(*i.then_branch);
        if (i.else_branch) walk(*i.else_branch);
        break;
      }
      case StmtKind::For:
        walk(*static_cast<const ForStmt&>(s).body);
        break;
      case StmtKind::While:
        walk(*static_cast<const WhileStmt&>(s).body);
        break;
      case StmtKind::Do:
        walk(*static_cast<const DoStmt&>(s).body);
        break;
      case StmtKind::Omp:
        if (static_cast<const OmpStmt&>(s).body) {
          walk(*static_cast<const OmpStmt&>(s).body);
        }
        break;
      default:
        break;
    }
  }

  std::vector<Accumulation> found_;
};

/// Recognized unprotected shared accumulations per region, paired with
/// their region. Shared by the reduction pass and the race classifier.
std::vector<std::pair<const ParallelRegion*, Accumulation>>
shared_accumulations(const LintContext& ctx) {
  std::vector<std::pair<const ParallelRegion*, Accumulation>> out;
  for (const auto& region : ctx.regions) {
    if (region.stmt == nullptr || region.stmt->body == nullptr) continue;
    for (const Accumulation& acc :
         AccumulationFinder().find(*region.stmt->body)) {
      const AccessInfo* write = find_access(region, acc.var, acc.loc, true);
      if (write == nullptr) continue;
      if (write->sharing != Sharing::Shared) continue;  // reduction/private ok
      if (!unprotected(write->ctx)) continue;
      out.emplace_back(&region, acc);
    }
  }
  return out;
}

// ---------------------------------------------------------------- passes

/// lint.race: one explanatory diagnostic per static race pair, plus the
/// cap-truncation note.
class RacePairsPass final : public LintPass {
 public:
  const char* id() const noexcept override { return "lint.race"; }
  const char* description() const noexcept override {
    return "conflicting unsynchronized accesses to shared memory "
           "(static dependence analysis)";
  }

  void run(const LintContext& ctx, std::vector<Diagnostic>& out) const override {
    std::set<const VarDecl*> accumulating;
    std::set<std::string> accumulating_names;
    for (const auto& [region, acc] : shared_accumulations(ctx)) {
      (void)region;
      accumulating.insert(acc.var);
      accumulating_names.insert(acc.var->name);
    }

    for (const auto& pair : ctx.race.pairs) {
      Diagnostic d;
      d.check_id = id();
      d.severity = Severity::Error;
      d.loc = pair.first.loc;
      d.message = "possible data race on shared '" + pair.first.var_name +
                  "': " + op_word(pair.first.op) + " of '" +
                  pair.first.expr_text + "' conflicts with " +
                  op_word(pair.second.op) + " of '" + pair.second.expr_text +
                  "' at " + loc_str(pair.second.loc) +
                  "; the accesses can execute concurrently on different "
                  "threads with no ordering synchronization between them";
      d.pattern = classify(pair, accumulating_names);
      d.related.push_back({pair.second.loc,
                           "conflicting " + std::string(op_word(pair.second.op)) +
                               " of '" + pair.second.expr_text + "'"});
      if (!pair.evidence.steps.empty()) {
        d.related.push_back(
            {pair.first.loc,
             "evidence: " + analysis::evidence_to_text(pair.evidence)});
      }
      out.push_back(std::move(d));
    }

    if (ctx.race.suppressed_pairs > 0) {
      Diagnostic d;
      d.check_id = id();
      d.severity = Severity::Note;
      d.message = std::to_string(ctx.race.suppressed_pairs) +
                  " additional conflicting pair(s) suppressed by the "
                  "max_pairs cap (" +
                  std::to_string(ctx.opts.detector.max_pairs) +
                  "); raise StaticDetectorOptions::max_pairs to see all";
      d.pattern = "report-truncation";
      out.push_back(std::move(d));
    }
  }

 private:
  static const char* op_word(char op) { return op == 'w' ? "write" : "read"; }

  static std::string classify(const analysis::RacePair& pair,
                              const std::set<std::string>& accumulating) {
    const bool array =
        pair.first.expr_text.find('[') != std::string::npos ||
        pair.second.expr_text.find('[') != std::string::npos;
    if (!array && accumulating.count(pair.first.var_name) != 0) {
      return "missing-reduction";
    }
    if (!array) return "unprotected-shared-scalar";
    if (pair.first.expr_text != pair.second.expr_text) {
      return "loop-carried-dependence";
    }
    return "shared-array-conflict";
  }
};

/// lint.datashare: default(none) audit plus privatization fix-its for
/// racing shared scalars.
class DataSharingPass final : public LintPass {
 public:
  const char* id() const noexcept override { return "lint.datashare"; }
  const char* description() const noexcept override {
    return "data-sharing audit: default(none) violations and missing "
           "private/firstprivate clauses";
  }

  void run(const LintContext& ctx, std::vector<Diagnostic>& out) const override {
    std::set<const VarDecl*> accumulating;
    for (const auto& [region, acc] : shared_accumulations(ctx)) {
      (void)region;
      accumulating.insert(acc.var);
    }
    std::set<std::string> racing;
    for (const auto& pair : ctx.race.pairs) racing.insert(pair.first.var_name);

    for (const auto& region : ctx.regions) {
      if (region.stmt == nullptr) continue;
      audit_default_none(region, out);
      privatization_hints(ctx, region, racing, accumulating, out);
    }
  }

 private:
  void audit_default_none(const ParallelRegion& region,
                          std::vector<Diagnostic>& out) const {
    const OmpDirective& dir = region.stmt->directive;
    const OmpClause* def = dir.find_clause(OmpClauseKind::Default);
    if (def == nullptr || def->arg != "none") return;

    std::set<std::string> listed;
    for (const auto& c : dir.clauses) {
      switch (c.kind) {
        case OmpClauseKind::Private:
        case OmpClauseKind::FirstPrivate:
        case OmpClauseKind::LastPrivate:
        case OmpClauseKind::Shared:
        case OmpClauseKind::Reduction:
        case OmpClauseKind::Linear:
        case OmpClauseKind::Copyprivate:
          for (const auto& item : c.vars) listed.insert(clause_base_name(item));
          break;
        default:
          break;
      }
    }

    std::set<std::string> reported;
    for (const auto& a : region.accesses) {
      if (a.var == nullptr) continue;
      const std::string& name = a.var->name;
      // Unlisted outer variables default to shared; everything that
      // classified private/loop-private/threadprivate is either listed
      // or declared inside the region, both fine under default(none).
      if (a.sharing != Sharing::Shared) continue;
      if (listed.count(name) != 0 || reported.count(name) != 0) continue;
      reported.insert(name);
      Diagnostic d;
      d.check_id = id();
      d.severity = Severity::Error;
      d.loc = a.loc;
      d.message = "'" + name + "' is referenced in a '" +
                  directive_text(dir) +
                  " default(none)' region but appears in no data-sharing "
                  "clause; OpenMP requires every outer variable to be "
                  "listed explicitly (use shared(" + name +
                  ") or private(" + name + ") as intended)";
      d.fixit = "shared(" + name + ")";
      d.pattern = "default-none";
      out.push_back(std::move(d));
    }
  }

  void privatization_hints(const LintContext& ctx, const ParallelRegion& region,
                           const std::set<std::string>& racing,
                           const std::set<const VarDecl*>& accumulating,
                           std::vector<Diagnostic>& out) const {
    (void)ctx;
    std::set<const VarDecl*> reported;
    for (const auto& a : region.accesses) {
      const VarDecl* var = a.var;
      if (var == nullptr || !is_scalar(*var)) continue;
      if (a.sharing != Sharing::Shared) continue;
      if (racing.count(var->name) == 0) continue;  // explanatory: race-gated
      if (accumulating.count(var) != 0) continue;  // lint.reduction's case
      if (reported.count(var) != 0) continue;

      // Earliest access decides the clause: a fresh write per iteration
      // wants private; a read of the original value wants firstprivate.
      // Vars with any protected access are the consistency pass's case:
      // the author meant to share them, so privatization is bad advice.
      const AccessInfo* earliest = nullptr;
      bool written = false;
      bool any_protected = false;
      for (const auto& b : region.accesses) {
        if (b.var != var) continue;
        written = written || b.is_write;
        any_protected = any_protected || !unprotected(b.ctx);
        if (earliest == nullptr || b.loc.line < earliest->loc.line ||
            (b.loc.line == earliest->loc.line &&
             b.loc.col < earliest->loc.col)) {
          earliest = &b;
        }
      }
      if (earliest == nullptr || !written || any_protected) continue;
      reported.insert(var);

      const bool write_first = earliest->is_write;
      Diagnostic d;
      d.check_id = id();
      d.severity = Severity::Warning;
      d.loc = earliest->loc;
      const std::string clause =
          (write_first ? "private(" : "firstprivate(") + var->name + ")";
      d.message = "shared scalar '" + var->name +
                  "' is written inside the '" +
                  directive_text(region.stmt->directive) +
                  "' region and races across threads; each thread needs " +
                  (write_first
                       ? "its own copy - add '" + clause + "'"
                       : "its own copy initialized from the original value "
                         "- add '" + clause + "'") +
                  " to the directive";
      d.fixit = clause;
      d.pattern = write_first ? "missing-private" : "firstprivate-missing";
      out.push_back(std::move(d));
    }
  }
};

/// lint.reduction: accumulation races with a concrete reduction fix-it.
class ReductionPass final : public LintPass {
 public:
  const char* id() const noexcept override { return "lint.reduction"; }
  const char* description() const noexcept override {
    return "unprotected accumulation recognizable as an OpenMP reduction";
  }

  void run(const LintContext& ctx, std::vector<Diagnostic>& out) const override {
    std::set<std::pair<const VarDecl*, int>> seen;
    for (const auto& [region, acc] : shared_accumulations(ctx)) {
      if (!seen.insert({acc.var, acc.loc.line}).second) continue;
      const std::string clause =
          "reduction(" + acc.op_clause + ":" + acc.var->name + ")";
      Diagnostic d;
      d.check_id = id();
      d.severity = Severity::Error;
      d.loc = acc.loc;
      d.message = "shared '" + acc.var->name +
                  "' is accumulated without a reduction clause: every "
                  "thread performs an unsynchronized read-modify-write, so "
                  "updates are lost; add '" + clause + "' to the '" +
                  directive_text(region->stmt->directive) + "' directive";
      d.fixit = clause;
      d.pattern = "missing-reduction";
      out.push_back(std::move(d));
    }
  }
};

/// lint.lock: omp_set_lock/omp_unset_lock pairing and ordering discipline.
class LockDisciplinePass final : public LintPass {
 public:
  const char* id() const noexcept override { return "lint.lock"; }
  const char* description() const noexcept override {
    return "OpenMP lock discipline: unpaired set/unset, re-acquisition, "
           "inconsistent acquisition order";
  }

  void run(const LintContext& ctx, std::vector<Diagnostic>& out) const override {
    // (held-before, acquired, acquisition site), across the whole unit.
    std::vector<std::tuple<const VarDecl*, const VarDecl*, SourceLoc>> order;
    for (const auto& fn : ctx.program.unit->functions) {
      if (!fn->body) continue;
      std::vector<std::pair<const VarDecl*, SourceLoc>> held;
      walk(*fn->body, held, order, out);
      for (const auto& [lock, loc] : held) {
        Diagnostic d;
        d.check_id = id();
        d.severity = Severity::Warning;
        d.loc = loc;
        d.message = "omp_set_lock('" + lock->name +
                    "') has no matching omp_unset_lock in '" + fn->name +
                    "'; any other thread contending for the lock blocks "
                    "forever";
        d.pattern = "omp-lock";
        out.push_back(std::move(d));
      }
    }

    // Inconsistent acquisition order (classic deadlock shape).
    std::set<std::pair<const VarDecl*, const VarDecl*>> reported;
    for (std::size_t i = 0; i < order.size(); ++i) {
      for (std::size_t j = i + 1; j < order.size(); ++j) {
        const auto& [a1, b1, loc1] = order[i];
        const auto& [a2, b2, loc2] = order[j];
        if (a1 != b2 || b1 != a2 || a1 == b1) continue;
        const auto key = std::minmax(a1, b1);
        if (!reported.insert({key.first, key.second}).second) continue;
        Diagnostic d;
        d.check_id = id();
        d.severity = Severity::Warning;
        d.loc = loc2;
        d.message = "locks '" + a1->name + "' and '" + b1->name +
                    "' are acquired in opposite orders on different paths "
                    "(here and at " + loc_str(loc1) +
                    "); two threads can deadlock each holding one lock";
        d.pattern = "omp-lock";
        d.related.push_back({loc1, "opposite acquisition order here"});
        out.push_back(std::move(d));
      }
    }
  }

 private:
  void handle_call(const Call& call,
                   std::vector<std::pair<const VarDecl*, SourceLoc>>& held,
                   std::vector<std::tuple<const VarDecl*, const VarDecl*,
                                          SourceLoc>>& order,
                   std::vector<Diagnostic>& out) const {
    const bool set = call.callee == "omp_set_lock";
    const bool set_nest = call.callee == "omp_set_nest_lock";
    const bool unset = call.callee == "omp_unset_lock" ||
                       call.callee == "omp_unset_nest_lock";
    if ((!set && !set_nest && !unset) || call.args.empty()) return;
    const VarDecl* lock = lock_operand(*call.args[0]);
    if (lock == nullptr) return;

    if (set || set_nest) {
      const auto it = std::find_if(held.begin(), held.end(),
                                   [&](const auto& h) { return h.first == lock; });
      if (set && it != held.end()) {
        Diagnostic d;
        d.check_id = id();
        d.severity = Severity::Error;
        d.loc = call.loc;
        d.message = "omp_set_lock('" + lock->name +
                    "') while the lock is already held (acquired at " +
                    loc_str(it->second) +
                    "); OpenMP simple locks are not reentrant, so this "
                    "thread deadlocks against itself";
        d.pattern = "omp-lock";
        d.related.push_back({it->second, "first acquisition here"});
        out.push_back(std::move(d));
      }
      for (const auto& [h, hloc] : held) {
        (void)hloc;
        if (h != lock) order.emplace_back(h, lock, call.loc);
      }
      held.emplace_back(lock, call.loc);
      return;
    }

    const auto it = std::find_if(held.begin(), held.end(),
                                 [&](const auto& h) { return h.first == lock; });
    if (it == held.end()) {
      Diagnostic d;
      d.check_id = id();
      d.severity = Severity::Warning;
      d.loc = call.loc;
      d.message = "omp_unset_lock('" + lock->name +
                  "') releases a lock that is not held on this path; "
                  "unlocking an unowned OpenMP lock is undefined behavior";
      d.pattern = "lock-partial";
      out.push_back(std::move(d));
      return;
    }
    held.erase(it);
  }

  static const VarDecl* lock_operand(const Expr& arg) {
    const Expr* e = &arg;
    while (const auto* u = expr_cast<Unary>(e)) {
      if (u->op != UnaryOp::AddrOf && u->op != UnaryOp::Deref) break;
      e = u->operand.get();
    }
    if (const auto* id = expr_cast<Ident>(e)) return id->decl;
    return nullptr;
  }

  void walk_expr(const Expr& e,
                 std::vector<std::pair<const VarDecl*, SourceLoc>>& held,
                 std::vector<std::tuple<const VarDecl*, const VarDecl*,
                                        SourceLoc>>& order,
                 std::vector<Diagnostic>& out) const {
    if (const auto* call = expr_cast<Call>(&e)) {
      handle_call(*call, held, order, out);
      for (const auto& arg : call->args) walk_expr(*arg, held, order, out);
      return;
    }
    if (const auto* b = expr_cast<Binary>(&e)) {
      walk_expr(*b->lhs, held, order, out);
      walk_expr(*b->rhs, held, order, out);
      return;
    }
    if (const auto* a = expr_cast<Assign>(&e)) {
      walk_expr(*a->target, held, order, out);
      walk_expr(*a->value, held, order, out);
      return;
    }
    if (const auto* u = expr_cast<Unary>(&e)) {
      walk_expr(*u->operand, held, order, out);
      return;
    }
  }

  void walk(const Stmt& s,
            std::vector<std::pair<const VarDecl*, SourceLoc>>& held,
            std::vector<std::tuple<const VarDecl*, const VarDecl*,
                                   SourceLoc>>& order,
            std::vector<Diagnostic>& out) const {
    switch (s.kind) {
      case StmtKind::Expr:
        walk_expr(*static_cast<const ExprStmt&>(s).expr, held, order, out);
        break;
      case StmtKind::Compound:
        for (const auto& st : static_cast<const CompoundStmt&>(s).body) {
          walk(*st, held, order, out);
        }
        break;
      case StmtKind::If: {
        const auto& i = static_cast<const IfStmt&>(s);
        walk(*i.then_branch, held, order, out);
        if (i.else_branch) walk(*i.else_branch, held, order, out);
        break;
      }
      case StmtKind::For:
        walk(*static_cast<const ForStmt&>(s).body, held, order, out);
        break;
      case StmtKind::While:
        walk(*static_cast<const WhileStmt&>(s).body, held, order, out);
        break;
      case StmtKind::Do:
        walk(*static_cast<const DoStmt&>(s).body, held, order, out);
        break;
      case StmtKind::Omp:
        if (static_cast<const OmpStmt&>(s).body) {
          walk(*static_cast<const OmpStmt&>(s).body, held, order, out);
        }
        break;
      default:
        break;
    }
  }
};

/// lint.barrier: illegal/asymmetric barriers and nowait misuse.
class BarrierNowaitPass final : public LintPass {
 public:
  const char* id() const noexcept override { return "lint.barrier"; }
  const char* description() const noexcept override {
    return "barrier nesting/asymmetry and nowait clauses that expose "
           "unfinished writes";
  }

  void run(const LintContext& ctx, std::vector<Diagnostic>& out) const override {
    for (const auto& fn : ctx.program.unit->functions) {
      if (!fn->body) continue;
      std::vector<OmpDirectiveKind> omp_stack;
      walk_barriers(*fn->body, omp_stack, 0, out);
    }
    for (const auto& region : ctx.regions) {
      if (region.stmt == nullptr || region.stmt->body == nullptr) continue;
      scan_nowait(region, *region.stmt->body, out);
    }
  }

 private:
  static bool barrier_illegal_inside(OmpDirectiveKind k) {
    switch (k) {
      case OmpDirectiveKind::Critical:
      case OmpDirectiveKind::Single:
      case OmpDirectiveKind::Master:
      case OmpDirectiveKind::Sections:
      case OmpDirectiveKind::ParallelSections:
      case OmpDirectiveKind::Section:
      case OmpDirectiveKind::Task:
      case OmpDirectiveKind::Ordered:
      case OmpDirectiveKind::For:
      case OmpDirectiveKind::ForSimd:
        return true;
      default:
        return false;
    }
  }

  void walk_barriers(const Stmt& s, std::vector<OmpDirectiveKind>& omp_stack,
                     int if_depth, std::vector<Diagnostic>& out) const {
    if (const auto* omp = stmt_cast<OmpStmt>(&s)) {
      if (omp->directive.kind == OmpDirectiveKind::Barrier) {
        for (auto it = omp_stack.rbegin(); it != omp_stack.rend(); ++it) {
          if (barrier_illegal_inside(*it)) {
            Diagnostic d;
            d.check_id = id();
            d.severity = Severity::Error;
            d.loc = omp->directive.loc;
            d.message = "'#pragma omp barrier' is not permitted in the "
                        "dynamic extent of a '" +
                        omp_directive_kind_name(*it) +
                        "' region (illegal OpenMP nesting)";
            d.pattern = "barrier";
            out.push_back(std::move(d));
            return;
          }
          if (*it == OmpDirectiveKind::Parallel ||
              *it == OmpDirectiveKind::ParallelFor ||
              *it == OmpDirectiveKind::ParallelForSimd ||
              *it == OmpDirectiveKind::Target ||
              *it == OmpDirectiveKind::TargetParallelFor) {
            break;  // enclosing team found; nesting is fine
          }
        }
        if (if_depth > 0) {
          Diagnostic d;
          d.check_id = id();
          d.severity = Severity::Warning;
          d.loc = omp->directive.loc;
          d.message = "conditionally executed '#pragma omp barrier': if any "
                      "thread takes a branch that skips it, the rest of the "
                      "team waits forever (asymmetric barrier)";
          d.pattern = "barrier-asymmetric";
          out.push_back(std::move(d));
        }
        return;
      }
      omp_stack.push_back(omp->directive.kind);
      // A parallel construct starts a fresh conditional context: its body
      // executes on every thread regardless of branches outside it.
      const int inner_if_depth =
          omp->directive.forks_team() ? 0 : if_depth;
      if (omp->body) {
        walk_barriers(*omp->body, omp_stack, inner_if_depth, out);
      }
      omp_stack.pop_back();
      return;
    }
    switch (s.kind) {
      case StmtKind::Compound:
        for (const auto& st : static_cast<const CompoundStmt&>(s).body) {
          walk_barriers(*st, omp_stack, if_depth, out);
        }
        break;
      case StmtKind::If: {
        const auto& i = static_cast<const IfStmt&>(s);
        walk_barriers(*i.then_branch, omp_stack, if_depth + 1, out);
        if (i.else_branch) {
          walk_barriers(*i.else_branch, omp_stack, if_depth + 1, out);
        }
        break;
      }
      case StmtKind::For:
        walk_barriers(*static_cast<const ForStmt&>(s).body, omp_stack,
                      if_depth, out);
        break;
      case StmtKind::While:
        walk_barriers(*static_cast<const WhileStmt&>(s).body, omp_stack,
                      if_depth, out);
        break;
      case StmtKind::Do:
        walk_barriers(*static_cast<const DoStmt&>(s).body, omp_stack,
                      if_depth, out);
        break;
      default:
        break;
    }
  }

  // ---- nowait -----------------------------------------------------------

  static bool is_nowait_worksharing(const OmpStmt& s) {
    switch (s.directive.kind) {
      case OmpDirectiveKind::For:
      case OmpDirectiveKind::ForSimd:
      case OmpDirectiveKind::Single:
      case OmpDirectiveKind::Sections:
        return s.directive.has_clause(OmpClauseKind::Nowait);
      default:
        return false;
    }
  }

  static void collect_written(const Expr& e, std::set<const VarDecl*>& out) {
    if (const auto* a = expr_cast<Assign>(&e)) {
      if (const VarDecl* v = base_decl(*a->target)) out.insert(v);
      collect_written(*a->value, out);
      return;
    }
    if (const auto* u = expr_cast<Unary>(&e)) {
      if (u->op == UnaryOp::PreInc || u->op == UnaryOp::PostInc ||
          u->op == UnaryOp::PreDec || u->op == UnaryOp::PostDec) {
        if (const VarDecl* v = base_decl(*u->operand)) out.insert(v);
      }
      collect_written(*u->operand, out);
      return;
    }
    if (const auto* b = expr_cast<Binary>(&e)) {
      collect_written(*b->lhs, out);
      collect_written(*b->rhs, out);
      return;
    }
    if (const auto* c = expr_cast<Call>(&e)) {
      for (const auto& arg : c->args) collect_written(*arg, out);
    }
  }

  static void collect_written_stmt(const Stmt& s,
                                   std::set<const VarDecl*>& out) {
    for_each_expr(s, [&](const Expr& e) { collect_written(e, out); });
  }

  static const VarDecl* base_decl(const Expr& e) {
    const Expr* cur = &e;
    while (true) {
      if (const auto* sub = expr_cast<Subscript>(cur)) {
        cur = sub->base.get();
        continue;
      }
      if (const auto* u = expr_cast<Unary>(cur)) {
        if (u->op == UnaryOp::Deref) {
          cur = u->operand.get();
          continue;
        }
      }
      break;
    }
    if (const auto* ident = expr_cast<Ident>(cur)) return ident->decl;
    return nullptr;
  }

  /// Applies `fn` to every top-level expression in the statement subtree.
  template <typename Fn>
  static void for_each_expr(const Stmt& s, Fn&& fn) {
    switch (s.kind) {
      case StmtKind::Expr:
        fn(*static_cast<const ExprStmt&>(s).expr);
        break;
      case StmtKind::Decl:
        for (const auto& v : static_cast<const DeclStmt&>(s).decls) {
          if (v->init) fn(*v->init);
        }
        break;
      case StmtKind::Compound:
        for (const auto& st : static_cast<const CompoundStmt&>(s).body) {
          for_each_expr(*st, fn);
        }
        break;
      case StmtKind::If: {
        const auto& i = static_cast<const IfStmt&>(s);
        fn(*i.cond);
        for_each_expr(*i.then_branch, fn);
        if (i.else_branch) for_each_expr(*i.else_branch, fn);
        break;
      }
      case StmtKind::For: {
        const auto& f = static_cast<const ForStmt&>(s);
        if (f.init) for_each_expr(*f.init, fn);
        if (f.cond) fn(*f.cond);
        if (f.inc) fn(*f.inc);
        for_each_expr(*f.body, fn);
        break;
      }
      case StmtKind::While: {
        const auto& w = static_cast<const WhileStmt&>(s);
        fn(*w.cond);
        for_each_expr(*w.body, fn);
        break;
      }
      case StmtKind::Do: {
        const auto& d = static_cast<const DoStmt&>(s);
        for_each_expr(*d.body, fn);
        fn(*d.cond);
        break;
      }
      case StmtKind::Return: {
        const auto& r = static_cast<const ReturnStmt&>(s);
        if (r.value) fn(*r.value);
        break;
      }
      case StmtKind::Omp:
        if (static_cast<const OmpStmt&>(s).body) {
          for_each_expr(*static_cast<const OmpStmt&>(s).body, fn);
        }
        break;
      default:
        break;
    }
  }

  /// First use (read or write) of any `vars` member in the subtree.
  static const Ident* find_use(const Stmt& s,
                               const std::set<const VarDecl*>& vars) {
    const Ident* found = nullptr;
    for_each_expr(s, [&](const Expr& e) {
      if (found == nullptr) found = find_use_expr(e, vars);
    });
    return found;
  }

  static const Ident* find_use_expr(const Expr& e,
                                    const std::set<const VarDecl*>& vars) {
    if (const auto* ident = expr_cast<Ident>(&e)) {
      return (ident->decl != nullptr && vars.count(ident->decl) != 0) ? ident
                                                                      : nullptr;
    }
    const Ident* found = nullptr;
    auto visit = [&](const Expr* child) {
      if (found == nullptr && child != nullptr) {
        found = find_use_expr(*child, vars);
      }
    };
    switch (e.kind) {
      case ExprKind::Subscript: {
        const auto& sub = static_cast<const Subscript&>(e);
        visit(sub.base.get());
        visit(sub.index.get());
        break;
      }
      case ExprKind::Unary:
        visit(static_cast<const Unary&>(e).operand.get());
        break;
      case ExprKind::Binary: {
        const auto& b = static_cast<const Binary&>(e);
        visit(b.lhs.get());
        visit(b.rhs.get());
        break;
      }
      case ExprKind::Assign: {
        const auto& a = static_cast<const Assign&>(e);
        visit(a.target.get());
        visit(a.value.get());
        break;
      }
      case ExprKind::Conditional: {
        const auto& c = static_cast<const Conditional&>(e);
        visit(c.cond.get());
        visit(c.then_expr.get());
        visit(c.else_expr.get());
        break;
      }
      case ExprKind::Call:
        for (const auto& arg : static_cast<const Call&>(e).args) {
          visit(arg.get());
        }
        break;
      case ExprKind::Cast:
        visit(static_cast<const Cast&>(e).operand.get());
        break;
      default:
        break;
    }
    return found;
  }

  void scan_nowait(const ParallelRegion& region, const Stmt& s,
                   std::vector<Diagnostic>& out) const {
    const auto* block = stmt_cast<CompoundStmt>(&s);
    if (block == nullptr) {
      if (const auto* omp = stmt_cast<OmpStmt>(&s); omp != nullptr && omp->body) {
        scan_nowait(region, *omp->body, out);
      }
      return;
    }
    for (std::size_t i = 0; i < block->body.size(); ++i) {
      const auto* omp = stmt_cast<OmpStmt>(block->body[i].get());
      if (omp == nullptr || !is_nowait_worksharing(*omp)) {
        scan_nowait(region, *block->body[i], out);
        continue;
      }
      scan_nowait(region, *block->body[i], out);  // nested compounds inside it
      std::set<const VarDecl*> written;
      if (omp->body) collect_written_stmt(*omp->body, written);
      // Only shared objects carry state across the removed barrier;
      // induction variables and privatized scalars cannot (the region's
      // access classification already knows which is which).
      for (auto it = written.begin(); it != written.end();) {
        bool shared = false;
        for (const auto& a : region.accesses) {
          if (a.var == *it && a.sharing == Sharing::Shared) {
            shared = true;
            break;
          }
        }
        it = shared ? std::next(it) : written.erase(it);
      }
      if (written.empty()) continue;
      for (std::size_t j = i + 1; j < block->body.size(); ++j) {
        if (const auto* next = stmt_cast<OmpStmt>(block->body[j].get())) {
          if (next->directive.kind == OmpDirectiveKind::Barrier) break;
        }
        const Ident* use = find_use(*block->body[j], written);
        if (use == nullptr) continue;
        Diagnostic d;
        d.check_id = id();
        d.severity = Severity::Warning;
        d.loc = use->loc;
        d.message = "'" + use->name + "' is written in the '" +
                    directive_text(omp->directive) +
                    " nowait' construct at line " +
                    std::to_string(omp->directive.loc.line) +
                    " and used here without an intervening barrier; the "
                    "nowait clause removed the implicit barrier, so other "
                    "threads may still be writing";
        d.fixit = "#pragma omp barrier";
        d.pattern = "nowait";
        d.related.push_back(
            {omp->directive.loc, "'nowait' removes the implicit barrier here"});
        out.push_back(std::move(d));
        break;  // one explanation per nowait construct
      }
    }
  }
};

/// lint.atomic: every concurrent access to a location must use the same
/// protection regime (atomic vs critical vs lock vs nothing).
class AtomicConsistencyPass final : public LintPass {
 public:
  const char* id() const noexcept override { return "lint.atomic"; }
  const char* description() const noexcept override {
    return "mixed protection: atomic vs plain, atomic vs critical, "
           "mismatched critical names, lock-vs-no-lock";
  }

  void run(const LintContext& ctx, std::vector<Diagnostic>& out) const override {
    for (const auto& region : ctx.regions) {
      std::map<const VarDecl*, std::vector<const AccessInfo*>> by_var;
      for (const auto& a : region.accesses) {
        if (a.var == nullptr || a.sharing != Sharing::Shared || a.via_call) {
          continue;
        }
        by_var[a.var].push_back(&a);
      }
      for (const auto& [var, accesses] : by_var) {
        check_var(*var, accesses, out);
      }
    }
  }

 private:
  static bool conflicting(const AccessInfo& a, const AccessInfo& b) {
    return a.ctx.phase == b.ctx.phase && (a.is_write || b.is_write);
  }

  void check_var(const VarDecl& var,
                 const std::vector<const AccessInfo*>& accesses,
                 std::vector<Diagnostic>& out) const {
    // Representative guarded access per protection regime; prefer writes
    // so a read-only plain access still conflicts with the guarded write.
    const AccessInfo* atomic = nullptr;
    const AccessInfo* critical = nullptr;
    const AccessInfo* locked = nullptr;
    const auto prefer_write = [](const AccessInfo*& slot, const AccessInfo* a) {
      if (slot == nullptr || (!slot->is_write && a->is_write)) slot = a;
    };
    for (const auto* a : accesses) {
      if (a->ctx.atomic) prefer_write(atomic, a);
      if (a->ctx.in_critical) prefer_write(critical, a);
      if (!a->ctx.locks.empty()) prefer_write(locked, a);
    }

    // Plain access conflicting with a protected one.
    if (atomic != nullptr || locked != nullptr) {
      for (const auto* p : accesses) {
        if (!unprotected(p->ctx)) continue;
        const AccessInfo* guard =
            atomic != nullptr && conflicting(*p, *atomic) ? atomic
            : locked != nullptr && conflicting(*p, *locked) ? locked
                                                            : nullptr;
        if (guard == nullptr) continue;
        const bool is_atomic = guard == atomic;
        Diagnostic d;
        d.check_id = id();
        d.severity = Severity::Error;
        d.loc = p->loc;
        d.message = "'" + p->text + "' is accessed without protection here, "
                    "but the same variable is " +
                    (is_atomic ? "updated under '#pragma omp atomic'"
                               : "accessed while holding omp lock '" +
                                     guard->ctx.locks.front()->name + "'") +
                    " at " + loc_str(guard->loc) + "; " +
                    (is_atomic ? "atomicity" : "the lock") +
                    " only protects accesses that use it - every "
                    "concurrent access needs the same protection";
        if (is_atomic) d.fixit = "#pragma omp atomic";
        d.pattern = is_atomic ? "atomic-plus-plain" : "lock-partial";
        d.related.push_back({guard->loc, "protected access here"});
        out.push_back(std::move(d));
        break;  // one explanation per variable
      }
    }

    // Atomic and critical on the same variable do not exclude each other.
    if (atomic != nullptr && critical != nullptr &&
        conflicting(*atomic, *critical)) {
      Diagnostic d;
      d.check_id = id();
      d.severity = Severity::Warning;
      d.loc = critical->loc;
      d.message = "'" + var.name + "' is protected by '#pragma omp critical' "
                  "here but by '#pragma omp atomic' at " +
                  loc_str(atomic->loc) +
                  "; atomic operations do not synchronize with critical "
                  "sections, so the two accesses can still race";
      d.pattern = "atomic-critical-mix";
      d.related.push_back({atomic->loc, "atomic access here"});
      out.push_back(std::move(d));
    }

    // Differently named critical sections do not exclude each other.
    for (const auto* a : accesses) {
      if (!a->ctx.in_critical) continue;
      bool done = false;
      for (const auto* b : accesses) {
        if (b == a || !b->ctx.in_critical) continue;
        if (a->ctx.critical_name == b->ctx.critical_name) continue;
        if (!conflicting(*a, *b)) continue;
        Diagnostic d;
        d.check_id = id();
        d.severity = Severity::Error;
        d.loc = a->loc;
        d.message = "'" + var.name + "' is guarded by 'critical(" +
                    pretty_name(a->ctx.critical_name) + ")' here but by "
                    "'critical(" + pretty_name(b->ctx.critical_name) +
                    ")' at " + loc_str(b->loc) +
                    "; differently named critical sections use different "
                    "locks and do not exclude each other";
        d.pattern = "different-critical-names";
        d.related.push_back({b->loc, "conflicting critical section here"});
        out.push_back(std::move(d));
        done = true;
        break;
      }
      if (done) break;  // one explanation per variable
    }
  }

  static std::string pretty_name(const std::string& name) {
    return name.empty() ? "<unnamed>" : name;
  }
};

}  // namespace

std::vector<std::unique_ptr<LintPass>> default_passes() {
  std::vector<std::unique_ptr<LintPass>> passes;
  passes.push_back(std::make_unique<RacePairsPass>());
  passes.push_back(std::make_unique<DataSharingPass>());
  passes.push_back(std::make_unique<ReductionPass>());
  passes.push_back(std::make_unique<LockDisciplinePass>());
  passes.push_back(std::make_unique<BarrierNowaitPass>());
  passes.push_back(std::make_unique<AtomicConsistencyPass>());
  return passes;
}

std::vector<std::pair<std::string, std::string>> available_checks() {
  std::vector<std::pair<std::string, std::string>> out;
  for (const auto& pass : default_passes()) {
    out.emplace_back(pass->id(), pass->description());
  }
  return out;
}

}  // namespace drbml::lint
