// Structured diagnostics produced by the OpenMP correctness linter.
//
// A Diagnostic is what a real tool (Intel Inspector, ompVerify/LLOV-style
// verifiers) emits and what the paper's `p2` prompt asks an LLM to
// emulate: a severity, a stable check id, a location in *trimmed-code*
// coordinates (the coordinate system DRB-ML labels use), a human
// explanation, an optional fix-it, and a DRB pattern-family
// classification. Emitters (lint/emit.hpp) render reports as human text,
// JSON, and SARIF 2.1.0.
#pragma once

#include <string>
#include <vector>

#include "analysis/report.hpp"
#include "minic/source.hpp"

namespace drbml::lint {

enum class Severity { Error, Warning, Note };

/// "error" / "warning" / "note" (also the SARIF result level).
[[nodiscard]] const char* severity_name(Severity s) noexcept;

/// A secondary location attached to a diagnostic (e.g. the conflicting
/// side of a race pair, or the `nowait` clause a stale read blames).
struct RelatedLocation {
  minic::SourceLoc loc;
  std::string message;
};

struct Diagnostic {
  std::string check_id;  // e.g. "lint.reduction"
  Severity severity = Severity::Warning;
  minic::SourceLoc loc;  // trimmed-code coordinates; line 0 = file-level
  std::string message;   // human explanation
  std::string fixit;     // suggested clause/directive text; "" = none
  std::string pattern;   // DRB pattern-family classification
  std::vector<RelatedLocation> related;
};

/// Output of one linter run over one program.
struct LintReport {
  std::vector<Diagnostic> diagnostics;
  /// The underlying static race evidence (pairs in DRB label format).
  analysis::RaceReport race;
  /// Findings removed by `drbml-lint-suppress(check-id)` comments.
  int suppressed = 0;

  [[nodiscard]] bool has_errors() const noexcept {
    for (const auto& d : diagnostics) {
      if (d.severity == Severity::Error) return true;
    }
    return false;
  }
};

}  // namespace drbml::lint
