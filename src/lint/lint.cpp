#include "lint/lint.hpp"

#include <string_view>

#include "minic/parser.hpp"
#include "obs/catalog.hpp"

namespace drbml::lint {

namespace {

obs::Counter& diag_counter(std::string_view check_id) {
  static obs::Counter& race = obs::metrics().counter(obs::kLintDiagRace);
  static obs::Counter& datashare =
      obs::metrics().counter(obs::kLintDiagDatashare);
  static obs::Counter& reduction =
      obs::metrics().counter(obs::kLintDiagReduction);
  static obs::Counter& lock = obs::metrics().counter(obs::kLintDiagLock);
  static obs::Counter& barrier = obs::metrics().counter(obs::kLintDiagBarrier);
  static obs::Counter& atomic = obs::metrics().counter(obs::kLintDiagAtomic);
  if (check_id == "lint.race") return race;
  if (check_id == "lint.datashare") return datashare;
  if (check_id == "lint.reduction") return reduction;
  if (check_id == "lint.lock") return lock;
  if (check_id == "lint.barrier") return barrier;
  return atomic;
}

}  // namespace

LintReport Linter::lint_source(std::string_view source) const {
  static obs::Counter& runs = obs::metrics().counter(obs::kLintRuns);
  static obs::Counter& suppressed =
      obs::metrics().counter(obs::kLintSuppressed);
  obs::Span span(obs::kSpanLintRun);
  minic::Program program = minic::parse_program(source);
  LintReport report = manager_.run(program, opts_);
  runs.add();
  suppressed.add(static_cast<std::uint64_t>(report.suppressed));
  for (const auto& d : report.diagnostics) diag_counter(d.check_id).add();
  return report;
}

}  // namespace drbml::lint
