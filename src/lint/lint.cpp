#include "lint/lint.hpp"

#include "minic/parser.hpp"

namespace drbml::lint {

LintReport Linter::lint_source(std::string_view source) const {
  minic::Program program = minic::parse_program(source);
  return manager_.run(program, opts_);
}

}  // namespace drbml::lint
