// Pass-manager core of the OpenMP correctness linter.
//
// The linter wraps the existing resolve -> access-collection -> dependence
// pipeline once per program, then hands the shared LintContext to a
// sequence of independent checks (LintPass). Each pass appends structured
// Diagnostics; the manager orders them by location, applies
// `// drbml-lint-suppress(check-id)` comment suppression (comma-separated
// ids, or `all`), and returns the final LintReport.
//
// A suppression comment covers the trimmed-code line it lives on; a
// comment-only line (dropped by the stripper) covers the next surviving
// line, so annotations can sit above the offending statement.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "analysis/access.hpp"
#include "analysis/race.hpp"
#include "lint/diagnostic.hpp"
#include "minic/ast.hpp"

namespace drbml::lint {

struct LintOptions {
  /// Knobs for the wrapped static race pipeline (max_pairs included).
  analysis::StaticDetectorOptions detector;
  /// Check ids to run; empty = every registered pass.
  std::vector<std::string> enabled;
};

/// Everything a pass may consult, computed once per program.
struct LintContext {
  const minic::Program& program;
  const analysis::Resolution& resolution;
  const std::vector<analysis::ParallelRegion>& regions;
  const analysis::RaceReport& race;  // static race pairs + diagnostics
  const LintOptions& opts;
};

/// One correctness check. Passes are stateless: `run` is const and must be
/// data-race-free (the lint detector fans analyze_batch out over threads).
class LintPass {
 public:
  virtual ~LintPass() = default;
  [[nodiscard]] virtual const char* id() const noexcept = 0;
  [[nodiscard]] virtual const char* description() const noexcept = 0;
  virtual void run(const LintContext& ctx,
                   std::vector<Diagnostic>& out) const = 0;
};

/// The built-in checks, in execution order (see lint/checks.cpp).
[[nodiscard]] std::vector<std::unique_ptr<LintPass>> default_passes();

/// (id, description) of every built-in check, in execution order.
[[nodiscard]] std::vector<std::pair<std::string, std::string>>
available_checks();

class PassManager {
 public:
  /// Registers the default passes.
  PassManager() : PassManager(default_passes()) {}
  explicit PassManager(std::vector<std::unique_ptr<LintPass>> passes)
      : passes_(std::move(passes)) {}

  /// Runs every enabled pass over a parsed program. Resolves the unit in
  /// place (idempotent), collects parallel regions, runs the static race
  /// detector, then the passes; diagnostics come back sorted by location
  /// with suppressed findings removed and counted.
  [[nodiscard]] LintReport run(minic::Program& program,
                               const LintOptions& opts) const;

  [[nodiscard]] const std::vector<std::unique_ptr<LintPass>>& passes()
      const noexcept {
    return passes_;
  }

 private:
  std::vector<std::unique_ptr<LintPass>> passes_;
};

}  // namespace drbml::lint
