// Top-level linter facade: source text in, LintReport out.
#pragma once

#include <string_view>

#include "lint/emit.hpp"
#include "lint/pass.hpp"

namespace drbml::lint {

class Linter {
 public:
  explicit Linter(LintOptions opts = {}) : opts_(std::move(opts)) {}

  /// Parses and lints one program. Throws ParseError on malformed input.
  [[nodiscard]] LintReport lint_source(std::string_view source) const;

  [[nodiscard]] const LintOptions& options() const noexcept { return opts_; }

 private:
  LintOptions opts_;
  PassManager manager_;
};

}  // namespace drbml::lint
