#include "lint/pass.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "support/strings.hpp"

namespace drbml::lint {

namespace {

constexpr const char* kSuppressMarker = "drbml-lint-suppress(";

/// Trimmed-code line -> set of suppressed check ids ("all" = every check).
std::map<int, std::set<std::string>> collect_suppressions(
    const minic::Program& program) {
  std::map<int, std::set<std::string>> out;
  const std::vector<std::string> lines = split_lines(program.original);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    std::size_t pos = lines[i].find(kSuppressMarker);
    while (pos != std::string::npos) {
      const std::size_t open = pos + std::string_view(kSuppressMarker).size();
      const std::size_t close = lines[i].find(')', open);
      if (close == std::string::npos) break;
      // The comment covers its own trimmed line; a comment-only line
      // (dropped by the stripper) covers the next surviving line.
      int target = program.strip.to_trimmed_line(static_cast<int>(i) + 1);
      for (std::size_t j = i + 1; target == 0 && j < lines.size(); ++j) {
        target = program.strip.to_trimmed_line(static_cast<int>(j) + 1);
      }
      if (target != 0) {
        for (const std::string& id :
             split(lines[i].substr(open, close - open), ',')) {
          const std::string_view trimmed = trim(id);
          if (!trimmed.empty()) out[target].insert(std::string(trimmed));
        }
      }
      pos = lines[i].find(kSuppressMarker, close);
    }
  }
  return out;
}

bool pass_enabled(const LintPass& pass, const LintOptions& opts) {
  if (opts.enabled.empty()) return true;
  return std::find(opts.enabled.begin(), opts.enabled.end(), pass.id()) !=
         opts.enabled.end();
}

}  // namespace

const char* severity_name(Severity s) noexcept {
  switch (s) {
    case Severity::Error: return "error";
    case Severity::Warning: return "warning";
    case Severity::Note: return "note";
  }
  return "?";
}

LintReport PassManager::run(minic::Program& program,
                            const LintOptions& opts) const {
  analysis::Resolution res = analysis::resolve(*program.unit);
  const std::vector<analysis::ParallelRegion> regions =
      analysis::collect_regions(*program.unit, res, opts.detector.collect);
  analysis::StaticRaceDetector detector(opts.detector);
  const analysis::RaceReport race = detector.analyze_unit(*program.unit);

  LintReport report;
  report.race = race;
  const LintContext ctx{program, res, regions, race, opts};
  for (const auto& pass : passes_) {
    if (!pass_enabled(*pass, opts)) continue;
    pass->run(ctx, report.diagnostics);
  }

  std::stable_sort(report.diagnostics.begin(), report.diagnostics.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     if (a.loc.line != b.loc.line) return a.loc.line < b.loc.line;
                     if (a.loc.col != b.loc.col) return a.loc.col < b.loc.col;
                     return a.check_id < b.check_id;
                   });

  const auto suppressions = collect_suppressions(program);
  if (!suppressions.empty()) {
    std::vector<Diagnostic> kept;
    kept.reserve(report.diagnostics.size());
    for (auto& d : report.diagnostics) {
      const auto it = suppressions.find(d.loc.line);
      const bool drop = it != suppressions.end() &&
                        (it->second.count(d.check_id) != 0 ||
                         it->second.count("all") != 0);
      if (drop) {
        ++report.suppressed;
      } else {
        kept.push_back(std::move(d));
      }
    }
    report.diagnostics = std::move(kept);
  }
  return report;
}

}  // namespace drbml::lint
