#include "lint/emit.hpp"

#include <map>

#include "lint/pass.hpp"

namespace drbml::lint {

namespace {

constexpr const char* kSarifSchema =
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json";
constexpr const char* kToolName = "drbml-lint";

std::string loc_prefix(const std::string& name, const minic::SourceLoc& loc) {
  if (loc.line <= 0) return name;
  return name + ":" + std::to_string(loc.line) + ":" + std::to_string(loc.col);
}

json::Object location_object(const std::string& uri,
                             const minic::SourceLoc& loc) {
  json::Object region;
  // SARIF regions are 1-based; clamp file-level diagnostics to 1:1.
  region.set("startLine", loc.line > 0 ? loc.line : 1);
  region.set("startColumn", loc.col > 0 ? loc.col : 1);
  json::Object artifact;
  artifact.set("uri", uri);
  json::Object physical;
  physical.set("artifactLocation", std::move(artifact));
  physical.set("region", std::move(region));
  json::Object location;
  location.set("physicalLocation", std::move(physical));
  return location;
}

}  // namespace

std::string to_text_line(const Diagnostic& d) {
  std::string out = std::string(severity_name(d.severity)) + ": [" +
                    d.check_id + "] " + d.message;
  if (d.loc.line > 0) {
    out = std::to_string(d.loc.line) + ":" + std::to_string(d.loc.col) + ": " +
          out;
  }
  if (!d.fixit.empty()) out += " [fix-it: " + d.fixit + "]";
  return out;
}

std::string to_text(const FileLint& file) {
  std::string out;
  int errors = 0;
  int warnings = 0;
  for (const auto& d : file.report.diagnostics) {
    if (d.severity == Severity::Error) ++errors;
    if (d.severity == Severity::Warning) ++warnings;
    out += loc_prefix(file.name, d.loc) + ": " + severity_name(d.severity) +
           ": [" + d.check_id + "] " + d.message + "\n";
    for (const auto& rel : d.related) {
      out += "  note: " + loc_prefix(file.name, rel.loc) + ": " + rel.message +
             "\n";
    }
    if (!d.fixit.empty()) out += "  fix-it: " + d.fixit + "\n";
  }
  out += file.name + ": " + std::to_string(errors) + " error(s), " +
         std::to_string(warnings) + " warning(s)";
  if (file.report.suppressed > 0) {
    out += ", " + std::to_string(file.report.suppressed) + " suppressed";
  }
  out += "\n";
  return out;
}

json::Value to_json(const FileLint& file) {
  json::Array diags;
  for (const auto& d : file.report.diagnostics) {
    json::Object o;
    o.set("check", d.check_id);
    o.set("severity", severity_name(d.severity));
    o.set("line", d.loc.line);
    o.set("col", d.loc.col);
    o.set("message", d.message);
    if (!d.fixit.empty()) o.set("fixit", d.fixit);
    if (!d.pattern.empty()) o.set("pattern", d.pattern);
    if (!d.related.empty()) {
      json::Array related;
      for (const auto& rel : d.related) {
        json::Object r;
        r.set("line", rel.loc.line);
        r.set("col", rel.loc.col);
        r.set("message", rel.message);
        related.push_back(json::Value(std::move(r)));
      }
      o.set("related", std::move(related));
    }
    diags.push_back(json::Value(std::move(o)));
  }
  json::Object root;
  root.set("file", file.name);
  root.set("diagnostics", std::move(diags));
  root.set("suppressed", file.report.suppressed);
  root.set("race_detected", file.report.race.race_detected);
  // Cap truncation is part of the verdict: a consumer that only reads the
  // machine output must still learn that pairs were dropped.
  root.set("race_suppressed_pairs", file.report.race.suppressed_pairs);
  root.set("race_discharged_pairs",
           static_cast<int>(file.report.race.discharged.size()));
  return json::Value(std::move(root));
}

json::Value to_sarif(const std::vector<FileLint>& files) {
  // Rules come from the registry so ruleIndex is stable across runs.
  const auto checks = available_checks();
  std::map<std::string, int> rule_index;
  json::Array rules;
  for (const auto& [id, description] : checks) {
    rule_index[id] = static_cast<int>(rules.size());
    json::Object text;
    text.set("text", description);
    json::Object rule;
    rule.set("id", id);
    rule.set("shortDescription", std::move(text));
    rules.push_back(json::Value(std::move(rule)));
  }

  json::Array results;
  int suppressed = 0;
  int suppressed_pairs = 0;
  for (const auto& file : files) {
    suppressed += file.report.suppressed;
    suppressed_pairs += file.report.race.suppressed_pairs;
    for (const auto& d : file.report.diagnostics) {
      json::Object message;
      message.set("text", d.message);
      json::Array locations;
      locations.push_back(json::Value(location_object(file.name, d.loc)));

      json::Object result;
      result.set("ruleId", d.check_id);
      const auto it = rule_index.find(d.check_id);
      result.set("ruleIndex", it != rule_index.end() ? it->second : -1);
      result.set("level", severity_name(d.severity));
      result.set("message", std::move(message));
      result.set("locations", std::move(locations));
      if (!d.related.empty()) {
        json::Array related;
        for (const auto& rel : d.related) {
          json::Object rel_message;
          rel_message.set("text", rel.message);
          json::Object r;
          r.set("physicalLocation",
                location_object(file.name, rel.loc)
                    .at("physicalLocation"));
          r.set("message", std::move(rel_message));
          related.push_back(json::Value(std::move(r)));
        }
        result.set("relatedLocations", std::move(related));
      }
      json::Object properties;
      if (!d.pattern.empty()) properties.set("pattern", d.pattern);
      if (!d.fixit.empty()) properties.set("fixit", d.fixit);
      if (!properties.empty()) result.set("properties", std::move(properties));
      results.push_back(json::Value(std::move(result)));
    }
  }

  json::Object driver;
  driver.set("name", kToolName);
  driver.set("informationUri", "https://github.com/LLNL/dataracebench");
  driver.set("rules", std::move(rules));
  json::Object tool;
  tool.set("driver", std::move(driver));
  json::Object run;
  run.set("tool", std::move(tool));
  run.set("results", std::move(results));
  if (suppressed > 0 || suppressed_pairs > 0) {
    json::Object props;
    if (suppressed > 0) props.set("suppressedFindings", suppressed);
    if (suppressed_pairs > 0) {
      // Race pairs dropped at the detector's max_pairs cap; without this
      // a SARIF consumer reads a truncated run as a complete one.
      props.set("suppressedRacePairs", suppressed_pairs);
    }
    run.set("properties", std::move(props));
  }
  json::Array runs;
  runs.push_back(json::Value(std::move(run)));

  json::Object root;
  root.set("$schema", kSarifSchema);
  root.set("version", "2.1.0");
  root.set("runs", std::move(runs));
  return json::Value(std::move(root));
}

bool sarif_shape_ok(const json::Value& sarif, std::string* why) {
  const auto fail = [&](const std::string& reason) {
    if (why != nullptr) *why = reason;
    return false;
  };
  try {
    if (!sarif.is_object()) return fail("top level is not an object");
    const json::Object& root = sarif.as_object();
    if (!root.contains("$schema")) return fail("missing $schema");
    const json::Value* version = root.find("version");
    if (version == nullptr || !version->is_string() ||
        version->as_string() != "2.1.0") {
      return fail("version is not \"2.1.0\"");
    }
    const json::Value* runs = root.find("runs");
    if (runs == nullptr || !runs->is_array() || runs->as_array().empty()) {
      return fail("runs is missing or empty");
    }
    for (const json::Value& run_value : runs->as_array()) {
      const json::Object& run = run_value.as_object();
      const json::Object& driver =
          run.at("tool").as_object().at("driver").as_object();
      if (driver.at("name").as_string() != kToolName) {
        return fail("driver.name is not drbml-lint");
      }
      const json::Array& rules = driver.at("rules").as_array();
      for (const json::Value& result_value : run.at("results").as_array()) {
        const json::Object& result = result_value.as_object();
        const std::string& rule_id = result.at("ruleId").as_string();
        const std::int64_t index = result.at("ruleIndex").as_int();
        if (index < 0 || index >= static_cast<std::int64_t>(rules.size())) {
          return fail("ruleIndex out of range for " + rule_id);
        }
        if (rules[static_cast<std::size_t>(index)]
                .as_object()
                .at("id")
                .as_string() != rule_id) {
          return fail("ruleIndex does not resolve to ruleId " + rule_id);
        }
        const std::string& level = result.at("level").as_string();
        if (level != "error" && level != "warning" && level != "note") {
          return fail("bad level '" + level + "'");
        }
        if (result.at("message").as_object().at("text").as_string().empty()) {
          return fail("empty message.text");
        }
        const json::Array& locations = result.at("locations").as_array();
        if (locations.size() != 1) {
          return fail("result must have exactly one location");
        }
        const json::Object& physical =
            locations[0].as_object().at("physicalLocation").as_object();
        if (physical.at("artifactLocation")
                .as_object()
                .at("uri")
                .as_string()
                .empty()) {
          return fail("empty artifactLocation.uri");
        }
        const json::Object& region = physical.at("region").as_object();
        if (region.at("startLine").as_int() < 1 ||
            region.at("startColumn").as_int() < 1) {
          return fail("region start below 1");
        }
      }
    }
  } catch (const JsonError& e) {
    return fail(std::string("schema access failed: ") + e.what());
  }
  return true;
}

}  // namespace drbml::lint
