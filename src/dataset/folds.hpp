// Stratified k-fold cross validation (paper Section 3.5).
//
// Folds preserve the positive/negative ratio. With the paper's 198-entry
// subset (100 positive, 98 negative) and k = 5, the construction yields
// three folds of 20+20 and two folds of 20+19.
#pragma once

#include <cstdint>
#include <vector>

namespace drbml::dataset {

struct FoldSplit {
  std::vector<int> train_indices;
  std::vector<int> test_indices;
};

class StratifiedKFold {
 public:
  StratifiedKFold(int k, std::uint64_t seed) : k_(k), seed_(seed) {}

  /// `labels[i]` is the class of sample i. Returns k splits; every sample
  /// appears in exactly one test set, and each test set's class ratio
  /// matches the whole within rounding.
  [[nodiscard]] std::vector<FoldSplit> split(
      const std::vector<bool>& labels) const;

  [[nodiscard]] int k() const noexcept { return k_; }

 private:
  int k_;
  std::uint64_t seed_;
};

}  // namespace drbml::dataset
