#include "dataset/drbml.hpp"

#include <cctype>

#include "minic/source.hpp"
#include "prompts/prompts.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace drbml::dataset {

namespace {

/// Parses "expr@L:C:OP" starting at `pos`; advances pos past it.
bool parse_side(const std::string& s, std::size_t& pos, std::string& expr,
                int& line, int& col, char& op) {
  const std::size_t at = s.find('@', pos);
  if (at == std::string::npos) return false;
  expr = std::string(trim(s.substr(pos, at - pos)));
  std::size_t i = at + 1;
  auto read_int = [&](int& out) {
    std::size_t start = i;
    while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) {
      ++i;
    }
    if (i == start) return false;
    out = std::stoi(s.substr(start, i - start));
    return true;
  };
  if (!read_int(line)) return false;
  if (i >= s.size() || s[i] != ':') return false;
  ++i;
  if (!read_int(col)) return false;
  if (i >= s.size() || s[i] != ':') return false;
  ++i;
  if (i >= s.size()) return false;
  op = static_cast<char>(std::tolower(static_cast<unsigned char>(s[i])));
  ++i;
  pos = i;
  return expr.size() > 0 && (op == 'r' || op == 'w');
}

}  // namespace

bool parse_annotation(const std::string& comment_line, RawAnnotation& out) {
  static const std::string kPrefix = "Data race pair:";
  const std::size_t start = comment_line.find(kPrefix);
  if (start == std::string::npos) return false;
  std::size_t pos = start + kPrefix.size();
  if (!parse_side(comment_line, pos, out.var1_expr, out.var1_line,
                  out.var1_col, out.var1_op)) {
    return false;
  }
  const std::size_t vs = comment_line.find("vs.", pos);
  if (vs == std::string::npos) return false;
  pos = vs + 3;
  return parse_side(comment_line, pos, out.var0_expr, out.var0_line,
                    out.var0_col, out.var0_op);
}

Entry build_entry(const drb::CorpusEntry& source) {
  Entry e;
  e.id = source.id;
  e.name = source.name;
  e.drb_code = drb::drb_code(source);

  const minic::StripResult strip = minic::strip_comments(e.drb_code);
  e.trimmed_code = strip.trimmed;
  e.code_len = static_cast<int>(e.trimmed_code.size());
  // The file name carries the yes/no verdict, as in DataRaceBench.
  e.data_race = ends_with(e.name, "-yes.c") ? 1 : 0;
  e.data_race_label = source.label;

  // Re-extract pair labels from the header comments.
  for (const std::string& comment : minic::extract_comments(e.drb_code)) {
    for (const std::string& line : split_lines(comment)) {
      RawAnnotation raw;
      if (!parse_annotation(line, raw)) continue;
      VarPairLabel label;
      label.name = {raw.var0_expr, raw.var1_expr};
      label.line = {strip.to_trimmed_line(raw.var0_line),
                    strip.to_trimmed_line(raw.var1_line)};
      label.col = {raw.var0_col, raw.var1_col};
      label.operation = {std::string(1, raw.var0_op),
                         std::string(1, raw.var1_op)};
      e.var_pairs.push_back(std::move(label));
    }
  }
  if (e.data_race == 1 && e.var_pairs.empty()) {
    throw Error("dataset: race-yes entry without annotations: " + e.name);
  }
  return e;
}

json::Value Entry::to_json() const {
  json::Object obj;
  obj.set("ID", json::Value(id));
  obj.set("name", json::Value(name));
  obj.set("DRB_code", json::Value(drb_code));
  obj.set("trimmed_code", json::Value(trimmed_code));
  obj.set("code_len", json::Value(code_len));
  obj.set("data_race", json::Value(data_race));
  obj.set("data_race_label", json::Value(data_race_label));
  json::Array pair_keys;
  for (std::size_t i = 0; i < var_pairs.size(); ++i) {
    pair_keys.emplace_back("pair" + std::to_string(i));
  }
  obj.set("var_pairs", json::Value(std::move(pair_keys)));
  for (std::size_t i = 0; i < var_pairs.size(); ++i) {
    const VarPairLabel& p = var_pairs[i];
    json::Object pair_obj;
    json::Array names;
    for (const auto& n : p.name) names.emplace_back(n);
    json::Array lines;
    for (int l : p.line) lines.emplace_back(l);
    json::Array cols;
    for (int c : p.col) cols.emplace_back(c);
    json::Array ops;
    for (const auto& o : p.operation) ops.emplace_back(o);
    pair_obj.set("name", json::Value(std::move(names)));
    pair_obj.set("line", json::Value(std::move(lines)));
    pair_obj.set("col", json::Value(std::move(cols)));
    pair_obj.set("operation", json::Value(std::move(ops)));
    obj.set("pair" + std::to_string(i), json::Value(std::move(pair_obj)));
  }
  return json::Value(std::move(obj));
}

Entry Entry::from_json(const json::Value& v) {
  const json::Object& obj = v.as_object();
  Entry e;
  e.id = static_cast<int>(obj.at("ID").as_int());
  e.name = obj.at("name").as_string();
  e.drb_code = obj.at("DRB_code").as_string();
  e.trimmed_code = obj.at("trimmed_code").as_string();
  e.code_len = static_cast<int>(obj.at("code_len").as_int());
  e.data_race = static_cast<int>(obj.at("data_race").as_int());
  e.data_race_label = obj.at("data_race_label").as_string();
  for (const auto& key : obj.at("var_pairs").as_array()) {
    const json::Object& p = obj.at(key.as_string()).as_object();
    VarPairLabel label;
    for (const auto& n : p.at("name").as_array()) {
      label.name.push_back(n.as_string());
    }
    for (const auto& l : p.at("line").as_array()) {
      label.line.push_back(static_cast<int>(l.as_int()));
    }
    for (const auto& c : p.at("col").as_array()) {
      label.col.push_back(static_cast<int>(c.as_int()));
    }
    for (const auto& o : p.at("operation").as_array()) {
      label.operation.push_back(o.as_string());
    }
    e.var_pairs.push_back(std::move(label));
  }
  return e;
}

const std::vector<Entry>& dataset() {
  static const std::vector<Entry> entries = [] {
    std::vector<Entry> out;
    out.reserve(drb::corpus().size());
    for (const auto& src : drb::corpus()) {
      out.push_back(build_entry(src));
    }
    return out;
  }();
  return entries;
}

PromptResponse make_detection_pair(const Entry& e) {
  PromptResponse pr;
  pr.prompt = prompts::finetune_detection_prompt(e.trimmed_code);
  pr.response = prompts::finetune_detection_response(e.data_race == 1);
  return pr;
}

PromptResponse make_varid_pair(const Entry& e) {
  PromptResponse pr;
  pr.prompt = prompts::finetune_varid_prompt(e.trimmed_code);
  if (e.data_race == 0) {
    pr.response = "no";
    return pr;
  }
  // Listing 9 response: "yes" plus a JSON object describing the pair.
  const VarPairLabel& p = e.var_pairs.front();
  json::Object obj;
  obj.set("data_race", json::Value(1));
  json::Array names;
  for (const auto& n : p.name) names.emplace_back(n);
  json::Array lines;
  for (int l : p.line) lines.emplace_back(l);
  json::Array ops;
  for (const auto& o : p.operation) {
    ops.emplace_back(o == "w" ? "write" : "read");
  }
  obj.set("variable_names", json::Value(std::move(names)));
  obj.set("variable_locations", json::Value(std::move(lines)));
  obj.set("operation_types", json::Value(std::move(ops)));
  pr.response = "yes\n" + json::Value(std::move(obj)).dump_pretty();
  return pr;
}

PromptResponse make_varid_pair_prose(const Entry& e) {
  PromptResponse pr;
  pr.prompt =
      "You are an HPC expert. Examine the following code and identify if "
      "there's a data race. If a data race is present, specify the "
      "variable pairs causing it, along with their line numbers and "
      "operations. Code: " +
      e.trimmed_code;
  if (e.data_race == 0) {
    pr.response = "No, the provided code is free of data races.";
    return pr;
  }
  const VarPairLabel& p = e.var_pairs.front();
  auto op_word = [](const std::string& op) {
    return op == "w" ? std::string("write") : std::string("read");
  };
  pr.response = "Yes, the provided code exhibits data race issues. The "
                "data race is caused by the variable '" +
                p.name[0] + "' at line " + std::to_string(p.line[0]) +
                " and the variable '" + p.name[1] + "' at line " +
                std::to_string(p.line[1]) + ". The first access is a " +
                op_word(p.operation[0]) + " operation and the second is a " +
                op_word(p.operation[1]) + " operation.";
  return pr;
}

}  // namespace drbml::dataset
