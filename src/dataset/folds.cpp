#include "dataset/folds.hpp"

#include "support/error.hpp"
#include "support/rng.hpp"

namespace drbml::dataset {

std::vector<FoldSplit> StratifiedKFold::split(
    const std::vector<bool>& labels) const {
  if (k_ < 2) throw Error("StratifiedKFold: k must be >= 2");
  std::vector<int> pos;
  std::vector<int> neg;
  for (int i = 0; i < static_cast<int>(labels.size()); ++i) {
    (labels[static_cast<std::size_t>(i)] ? pos : neg).push_back(i);
  }
  Rng rng(seed_);
  rng.shuffle(pos);
  rng.shuffle(neg);

  // Deal each class round-robin into folds; fold f gets every k-th sample.
  std::vector<std::vector<int>> test_sets(static_cast<std::size_t>(k_));
  auto deal = [&](const std::vector<int>& cls) {
    for (std::size_t i = 0; i < cls.size(); ++i) {
      test_sets[i % static_cast<std::size_t>(k_)].push_back(cls[i]);
    }
  };
  deal(pos);
  deal(neg);

  std::vector<FoldSplit> out;
  out.reserve(static_cast<std::size_t>(k_));
  for (int f = 0; f < k_; ++f) {
    FoldSplit split;
    split.test_indices = test_sets[static_cast<std::size_t>(f)];
    for (int g = 0; g < k_; ++g) {
      if (g == f) continue;
      const auto& other = test_sets[static_cast<std::size_t>(g)];
      split.train_indices.insert(split.train_indices.end(), other.begin(),
                                 other.end());
    }
    out.push_back(std::move(split));
  }
  return out;
}

}  // namespace drbml::dataset
