// The DRB-ML dataset (paper Section 3.1, Table 1, Listings 2/3/8/9).
//
// Each corpus microbenchmark becomes one JSON entry with keys:
//   ID, name, DRB_code, trimmed_code, code_len, data_race,
//   data_race_label, var_pairs, pair0..pairN
// Labels are *re-extracted from the DRB header comments* (mirroring the
// paper's scripts), with "Data race pair: expr@L:C:OP vs. expr@L:C:OP"
// annotations mapped from original-file coordinates to trimmed-code
// coordinates. Tests cross-validate the extraction against the corpus
// registry's authored ground truth.
#pragma once

#include <string>
#include <vector>

#include "drb/corpus.hpp"
#include "support/json.hpp"

namespace drbml::dataset {

/// One labelled variable pair in DRB-ML form: two parallel arrays of
/// attributes, index 0 = VAR0 (writer side), index 1 = VAR1.
struct VarPairLabel {
  std::vector<std::string> name;       // 2 entries
  std::vector<int> line;               // trimmed-code lines
  std::vector<int> col;                // trimmed-code columns
  std::vector<std::string> operation;  // "w" / "r"

  friend bool operator==(const VarPairLabel&, const VarPairLabel&) = default;
};

/// One DRB-ML entry (Table 1 schema).
struct Entry {
  int id = 0;
  std::string name;
  std::string drb_code;
  std::string trimmed_code;
  int code_len = 0;
  int data_race = 0;
  std::string data_race_label;
  std::vector<VarPairLabel> var_pairs;

  [[nodiscard]] json::Value to_json() const;
  [[nodiscard]] static Entry from_json(const json::Value& v);
};

/// Builds one entry from a corpus microbenchmark by rendering its DRB
/// file, stripping comments, and parsing the header annotations.
[[nodiscard]] Entry build_entry(const drb::CorpusEntry& source);

/// Builds the full DRB-ML dataset (201 entries). Built once and cached.
[[nodiscard]] const std::vector<Entry>& dataset();

/// Parses one "Data race pair: a[i+1]@64:10:R vs. a[i]@64:5:W" annotation.
/// Coordinates are in the coordinate system of the text the annotation was
/// found in (original file); the caller remaps lines. Returns false if the
/// line is not an annotation.
struct RawAnnotation {
  std::string var1_expr;  // the dependent side, printed first by DRB
  int var1_line = 0;
  int var1_col = 0;
  char var1_op = 'r';
  std::string var0_expr;
  int var0_line = 0;
  int var0_col = 0;
  char var0_op = 'w';
};
[[nodiscard]] bool parse_annotation(const std::string& comment_line,
                                    RawAnnotation& out);

/// The paper's prompt-response pairs for LLM fine-tuning.
struct PromptResponse {
  std::string prompt;
  std::string response;
};

/// Listing 8: detection pair ("yes"/"no" response).
[[nodiscard]] PromptResponse make_detection_pair(const Entry& e);

/// Listing 9: variable-identification pair (JSON response).
[[nodiscard]] PromptResponse make_varid_pair(const Entry& e);

/// Listing 3: the dataset's *original* natural-language response format.
/// Section 4.5 describes transitioning from this to structured JSON
/// because prose is hard to parse; both formats are kept so the harness
/// can quantify that difficulty.
[[nodiscard]] PromptResponse make_varid_pair_prose(const Entry& e);

}  // namespace drbml::dataset
