// drbml -- command line interface to the library.
//
//   drbml analyze  [--detector SPEC] [--jobs N] [--explain]
//                  [--format text|json] FILE.c...
//                                               analyze programs (many
//                                               files fan out over N
//                                               worker threads); --explain
//                                               prints the evidence chain
//                                               behind every reported and
//                                               discharged pair
//   drbml graph    [--dot] FILE.c               print its dependence graph
//   drbml lint     [--format text|json|sarif] [--check] [--jobs N]
//                  [FILE.c... | --entry NAME | --corpus | --synth N]
//                                               run the OpenMP correctness
//                                               linter (SARIF 2.1.0 capable)
//   drbml fix      [--strategy auto|lint|sync|serialize] [--dry-run]
//                  [--diff] [--check] [--min-fix-rate PCT] [--jobs N]
//                  [FILE.c... | --entry NAME | --corpus | --synth N]
//                                               detector-verified automatic
//                                               race repair; FILE args are
//                                               rewritten in place unless
//                                               --dry-run
//   drbml explore  [--strategy uniform|pct] [--budget N] [--depth D]
//                  [--plateau W] [--seed S] [--no-minimize] [--jobs N]
//                  [--check]
//                  [FILE.c... | --entry NAME | --corpus | --synth N]
//                                               budgeted schedule exploration
//                                               (PCT priority schedules or a
//                                               uniform random walk); races
//                                               ship a minimized replayable
//                                               witness
//   drbml explore  --replay WITNESS FILE.c      re-run a recorded witness
//                                               bit-identically
//   drbml stats    [--jobs N] [--no-repair] [--no-explore] [--cache FILE]
//                                               run the full corpus pipeline
//                                               and print per-stage timings
//                                               plus the deterministic
//                                               counter snapshot
//   drbml serve    [--socket PATH] [--jobs N] [--queue-limit N]
//                  [--deadline-ms N] [--cache-budget BYTES] [--cache FILE]
//                                               long-lived detection daemon:
//                                               NDJSON requests on stdin (or
//                                               a unix socket), responses on
//                                               stdout; bounded admission
//                                               queue, priority scheduling,
//                                               graceful SIGINT/SIGTERM
//                                               drain (see docs/SERVE.md)
//   drbml corpus   [--pattern P] [--limit N]    list corpus entries
//   drbml entry    NAME                         print one entry's DRB file
//   drbml dataset  [--out DIR]                  write DRB-ML JSON to disk
//   drbml synth    [--count N] [--seed S] [--out DIR]  generate kernels
//   drbml detectors                             list detector specs
//   drbml help
//
// Every subcommand also accepts the global observability flags
//   --trace FILE     write a Chrome trace (chrome://tracing, Perfetto)
//   --metrics FILE   write the deterministic metrics JSON at exit
// and honours the DRBML_TRACE / DRBML_METRICS environment variables, plus
// the execution-backend selector
//   --backend interp|vm   AST walker vs. bytecode VM (default vm; also
//                         settable via DRBML_BACKEND)
// Both backends produce bit-identical verdicts, schedules, and output.
#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "analysis/depgraph.hpp"
#include "core/detector.hpp"
#include "core/fix.hpp"
#include "dataset/drbml.hpp"
#include "drb/corpus.hpp"
#include "drb/synth.hpp"
#include "eval/artifact_cache.hpp"
#include "eval/experiments.hpp"
#include "explore/explore.hpp"
#include "explore/witness.hpp"
#include "lint/lint.hpp"
#include "obs/catalog.hpp"
#include "runtime/interp.hpp"
#include "serve/server.hpp"
#include "support/error.hpp"
#include "support/parallel.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

namespace {

using namespace drbml;

int usage() {
  std::printf(
      "drbml -- data race detection substrate (LLM study reproduction)\n"
      "\n"
      "usage:\n"
      "  drbml analyze [--detector SPEC] [--jobs N] [--explain]\n"
      "                [--format text|json] FILE.c...\n"
      "  drbml graph [--dot] FILE.c\n"
      "  drbml lint [--format text|json|sarif] [--check] [--jobs N]\n"
      "             [FILE.c... | --entry NAME | --corpus | --synth N "
      "[--seed S]]\n"
      "  drbml fix [--strategy auto|lint|sync|serialize] [--dry-run] "
      "[--diff]\n"
      "            [--check] [--min-fix-rate PCT] [--jobs N]\n"
      "            [FILE.c... | --entry NAME | --corpus | --synth N "
      "[--seed S]]\n"
      "  drbml explore [--strategy uniform|pct] [--budget N] [--depth D]\n"
      "                [--plateau W] [--seed S] [--no-minimize] [--jobs N]\n"
      "                [--check]\n"
      "                [FILE.c... | --entry NAME | --corpus | --synth N]\n"
      "  drbml explore --replay WITNESS FILE.c\n"
      "  drbml stats [--jobs N] [--no-repair] [--no-explore] [--cache FILE]\n"
      "  drbml serve [--socket PATH] [--jobs N] [--queue-limit N]\n"
      "              [--deadline-ms N] [--cache-budget BYTES] [--cache "
      "FILE]\n"
      "  drbml corpus [--pattern P] [--limit N]\n"
      "  drbml entry NAME\n"
      "  drbml dataset [--out DIR]\n"
      "  drbml synth [--count N] [--seed S] [--out DIR]\n"
      "  drbml detectors\n"
      "\n"
      "detector specs: static | dynamic | hybrid | lint | "
      "explore[:uniform|:pct] |\n"
      "                llm:<persona>[:<prompt>]\n"
      "personas: gpt35, gpt4, starchat, llama2; prompts: p1, p2, p3, bp2\n"
      "--jobs N: worker threads for multi-file analyze (0 = auto from\n"
      "          DRBML_JOBS or hardware; results identical at any N)\n"
      "global flags (any subcommand): --trace FILE (Chrome trace JSON),\n"
      "          --metrics FILE (deterministic metrics JSON at exit);\n"
      "          DRBML_TRACE / DRBML_METRICS env vars do the same\n");
  return 2;
}

/// Strict integer flag value: rejects the std::atoi garbage-becomes-0
/// behaviour with a usage error instead.
std::int64_t int_flag(const char* flag, const std::string& value) {
  const std::optional<std::int64_t> parsed = parse_int(value);
  if (!parsed.has_value()) {
    throw Error(std::string(flag) + " expects an integer, got '" + value + "'");
  }
  return *parsed;
}

std::string read_file(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw Error("cannot open " + path);
  std::ostringstream ss;
  ss << file.rdbuf();
  return ss.str();
}

void print_verdict(const core::RaceVerdict& v) {
  for (const auto& pair : v.pairs) {
    std::printf("  %s@%d:%d:%c vs. %s@%d:%d:%c\n",
                pair.first.expr_text.c_str(), pair.first.loc.line,
                pair.first.loc.col, pair.first.op,
                pair.second.expr_text.c_str(), pair.second.loc.line,
                pair.second.loc.col, pair.second.op);
  }
  // Tool notes (e.g. "N additional pair(s) suppressed (max_pairs=...)")
  // must reach the user: truncation is never silent.
  for (const auto& diag : v.diagnostics) {
    std::printf("  %s\n", diag.c_str());
  }
  if (!v.model_response.empty()) {
    std::printf("model response:\n%s\n", v.model_response.c_str());
  }
}

/// --explain, text format: the full evidence chain behind every reported
/// and discharged pair (one indented line per rule consulted).
void print_explanation(const core::RaceVerdict& v) {
  for (const auto& pair : v.pairs) {
    std::printf("  racy %s@%d vs. %s@%d\n    %s",
                pair.first.expr_text.c_str(), pair.first.loc.line,
                pair.second.expr_text.c_str(), pair.second.loc.line,
                analysis::evidence_chain_text(pair.evidence).c_str());
  }
  for (const auto& d : v.discharged) {
    std::printf("  safe %s@%d vs. %s@%d\n    %s", d.first.expr_text.c_str(),
                d.first.loc.line, d.second.expr_text.c_str(),
                d.second.loc.line,
                analysis::evidence_chain_text(d.evidence).c_str());
  }
  if (v.pairs.empty() && v.discharged.empty()) {
    std::printf("  (no candidate pairs)\n");
  }
}

json::Object access_to_json(const analysis::RaceAccess& a) {
  json::Object o;
  o.set("expr", a.expr_text);
  o.set("var", a.var_name);
  o.set("line", a.loc.line);
  o.set("col", a.loc.col);
  o.set("op", std::string(1, a.op));
  return o;
}

/// --explain, json format: one machine-readable object per file with the
/// verdict and evidence_to_json chains for every candidate pair.
json::Value explain_to_json(const std::string& path, const std::string& name,
                            const core::RaceVerdict& v) {
  json::Array pairs;
  for (const auto& pair : v.pairs) {
    json::Object o;
    o.set("first", access_to_json(pair.first));
    o.set("second", access_to_json(pair.second));
    o.set("evidence", analysis::evidence_to_json(pair.evidence));
    pairs.push_back(json::Value(std::move(o)));
  }
  json::Array discharged;
  for (const auto& d : v.discharged) {
    json::Object o;
    o.set("first", access_to_json(d.first));
    o.set("second", access_to_json(d.second));
    o.set("evidence", analysis::evidence_to_json(d.evidence));
    discharged.push_back(json::Value(std::move(o)));
  }
  json::Array diags;
  for (const auto& diag : v.diagnostics) diags.emplace_back(diag);
  json::Object root;
  root.set("file", path);
  root.set("detector", name);
  root.set("race_detected", v.race);
  root.set("pairs", std::move(pairs));
  root.set("discharged", std::move(discharged));
  root.set("diagnostics", std::move(diags));
  return json::Value(std::move(root));
}

int cmd_analyze(const std::vector<std::string>& args) {
  core::DetectorSpec spec;
  std::vector<std::string> paths;
  bool explain = false;
  std::string format = "text";
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--detector" && i + 1 < args.size()) {
      spec.spec = args[++i];
    } else if (args[i] == "--jobs" && i + 1 < args.size()) {
      spec.jobs = static_cast<int>(int_flag("--jobs", args[++i]));
    } else if (args[i] == "--explain") {
      explain = true;
    } else if (args[i] == "--format" && i + 1 < args.size()) {
      format = args[++i];
      if (format != "text" && format != "json") {
        throw Error("--format expects text or json, got '" + format + "'");
      }
    } else {
      paths.push_back(args[i]);
    }
  }
  if (paths.empty()) return usage();
  if (format == "json" && !explain) {
    throw Error("--format json requires --explain");
  }
  auto detector = core::make_detector(spec);

  // Fan out over the pool (trivially serial for one file); verdicts print
  // in input order.
  std::vector<std::string> sources;
  sources.reserve(paths.size());
  for (const auto& path : paths) sources.push_back(read_file(path));
  const std::vector<core::RaceVerdict> verdicts =
      detector->analyze_batch(sources);
  bool any_race = false;
  json::Array out;
  for (std::size_t i = 0; i < verdicts.size(); ++i) {
    const core::RaceVerdict& v = verdicts[i];
    any_race = any_race || v.race;
    if (explain && format == "json") {
      out.push_back(explain_to_json(paths[i], detector->name(), v));
      continue;
    }
    if (paths.size() == 1) {
      std::printf("%s: %s\n", detector->name().c_str(),
                  v.race ? "DATA RACE" : "no race detected");
    } else {
      std::printf("%s: %s: %s\n", paths[i].c_str(), detector->name().c_str(),
                  v.race ? "DATA RACE" : "no race detected");
    }
    print_verdict(v);
    if (explain) print_explanation(v);
  }
  if (explain && format == "json") {
    std::printf("%s\n", json::Value(std::move(out)).dump_pretty().c_str());
  }
  return any_race ? 1 : 0;
}

int cmd_graph(const std::vector<std::string>& args) {
  bool dot = false;
  std::string path;
  for (const auto& a : args) {
    if (a == "--dot") {
      dot = true;
    } else {
      path = a;
    }
  }
  if (path.empty()) return usage();
  const analysis::DependenceGraph g =
      analysis::build_dependence_graph(read_file(path));
  std::printf("%s", dot ? g.to_dot().c_str() : g.to_text().c_str());
  return 0;
}

int cmd_lint(const std::vector<std::string>& args) {
  std::string format = "text";
  bool check = false;
  int jobs = 0;
  int synth_count = 0;
  std::uint64_t synth_seed = 0;
  bool whole_corpus = false;
  std::vector<std::string> entry_names;
  std::vector<std::string> paths;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--format" && i + 1 < args.size()) {
      format = args[++i];
      if (format != "text" && format != "json" && format != "sarif") {
        throw Error("--format expects text, json, or sarif, got '" + format +
                    "'");
      }
    } else if (args[i] == "--check") {
      check = true;
    } else if (args[i] == "--jobs" && i + 1 < args.size()) {
      jobs = static_cast<int>(int_flag("--jobs", args[++i]));
    } else if (args[i] == "--entry" && i + 1 < args.size()) {
      entry_names.push_back(args[++i]);
    } else if (args[i] == "--corpus") {
      whole_corpus = true;
    } else if (args[i] == "--synth" && i + 1 < args.size()) {
      synth_count = static_cast<int>(int_flag("--synth", args[++i]));
    } else if (args[i] == "--seed" && i + 1 < args.size()) {
      synth_seed = static_cast<std::uint64_t>(int_flag("--seed", args[++i]));
    } else {
      paths.push_back(args[i]);
    }
  }

  std::vector<std::pair<std::string, std::string>> sources;  // (name, code)
  for (const auto& path : paths) sources.emplace_back(path, read_file(path));
  for (const auto& name : entry_names) {
    const drb::CorpusEntry* e = drb::find_entry(name);
    if (e == nullptr) throw Error("no such entry: " + name);
    sources.emplace_back(e->name, drb::drb_code(*e));
  }
  if (whole_corpus) {
    for (const auto& e : drb::corpus()) {
      sources.emplace_back(e.name, drb::drb_code(e));
    }
  }
  if (synth_count > 0) {
    drb::SynthConfig config;
    config.count = synth_count;
    config.seed = synth_seed;
    for (const drb::SynthEntry& e : drb::synthesize(config)) {
      sources.emplace_back(e.name, e.code);
    }
  }
  if (sources.empty()) return usage();

  // Lint every file; a parse failure aborts that file, not the run.
  struct Outcome {
    lint::LintReport report;
    std::string error;
  };
  const lint::Linter linter;
  const std::vector<Outcome> outcomes = support::parallel_map(
      jobs, sources, [&](const std::pair<std::string, std::string>& src) {
        Outcome o;
        try {
          o.report = linter.lint_source(src.second);
        } catch (const Error& e) {
          o.error = e.what();
        }
        return o;
      });

  std::vector<lint::FileLint> files;
  int failed = 0;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    if (!outcomes[i].error.empty()) {
      std::fprintf(stderr, "%s: error: %s\n", sources[i].first.c_str(),
                   outcomes[i].error.c_str());
      ++failed;
      continue;
    }
    files.push_back({sources[i].first, outcomes[i].report});
  }

  int errors = 0;
  int warnings = 0;
  int suppressed = 0;
  for (const auto& f : files) {
    suppressed += f.report.suppressed;
    for (const auto& d : f.report.diagnostics) {
      if (d.severity == lint::Severity::Error) ++errors;
      if (d.severity == lint::Severity::Warning) ++warnings;
    }
  }

  if (check) {
    // Self-check gate: every file linted without crashing and the SARIF
    // rendering of the full run is structurally valid.
    std::string why;
    const bool shape_ok = lint::sarif_shape_ok(lint::to_sarif(files), &why);
    std::printf(
        "linted %zu file(s): %d error(s), %d warning(s), %d suppressed; "
        "%d parse failure(s); SARIF shape %s\n",
        files.size(), errors, warnings, suppressed, failed,
        shape_ok ? "OK" : ("INVALID: " + why).c_str());
    return (failed == 0 && shape_ok) ? 0 : 1;
  }

  if (format == "sarif") {
    std::printf("%s\n", lint::to_sarif(files).dump_pretty().c_str());
  } else if (format == "json") {
    json::Array per_file;
    for (const auto& f : files) per_file.push_back(lint::to_json(f));
    std::printf("%s\n", json::Value(std::move(per_file)).dump_pretty().c_str());
  } else {
    for (const auto& f : files) std::printf("%s", lint::to_text(f).c_str());
  }
  if (failed > 0) return 2;
  return errors > 0 ? 1 : 0;
}

int cmd_fix(const std::vector<std::string>& args) {
  core::FixerSpec spec;
  bool dry_run = false;
  bool show_diff = false;
  bool check = false;
  int min_fix_rate = 60;  // percent, --check only
  int synth_count = 0;
  std::uint64_t synth_seed = 0;
  bool whole_corpus = false;
  std::vector<std::string> entry_names;
  std::vector<std::string> paths;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--strategy" && i + 1 < args.size()) {
      spec.strategy = args[++i];
    } else if (args[i] == "--dry-run") {
      dry_run = true;
    } else if (args[i] == "--diff") {
      show_diff = true;
    } else if (args[i] == "--check") {
      check = true;
    } else if (args[i] == "--min-fix-rate" && i + 1 < args.size()) {
      min_fix_rate = static_cast<int>(int_flag("--min-fix-rate", args[++i]));
    } else if (args[i] == "--jobs" && i + 1 < args.size()) {
      spec.jobs = static_cast<int>(int_flag("--jobs", args[++i]));
    } else if (args[i] == "--entry" && i + 1 < args.size()) {
      entry_names.push_back(args[++i]);
    } else if (args[i] == "--corpus") {
      whole_corpus = true;
    } else if (args[i] == "--synth" && i + 1 < args.size()) {
      synth_count = static_cast<int>(int_flag("--synth", args[++i]));
    } else if (args[i] == "--seed" && i + 1 < args.size()) {
      synth_seed = static_cast<std::uint64_t>(int_flag("--seed", args[++i]));
    } else {
      paths.push_back(args[i]);
    }
  }

  struct Source {
    std::string name;
    std::string code;
    bool is_file = false;    // rewrite in place on fix (unless --dry-run)
    int race_label = -1;     // ground truth: 1 race, 0 no race, -1 unknown
  };
  std::vector<Source> sources;
  for (const auto& path : paths) {
    sources.push_back({path, read_file(path), true, -1});
  }
  for (const auto& name : entry_names) {
    const drb::CorpusEntry* e = drb::find_entry(name);
    if (e == nullptr) throw Error("no such entry: " + name);
    sources.push_back({e->name, drb::drb_code(*e), false, e->race ? 1 : 0});
  }
  if (whole_corpus) {
    for (const auto& e : drb::corpus()) {
      sources.push_back({e.name, drb::drb_code(e), false, e.race ? 1 : 0});
    }
  }
  if (synth_count > 0) {
    drb::SynthConfig config;
    config.count = synth_count;
    config.seed = synth_seed;
    for (const drb::SynthEntry& e : drb::synthesize(config)) {
      sources.push_back({e.name, e.code, false, e.race ? 1 : 0});
    }
  }
  if (sources.empty()) return usage();

  const core::RaceFixer fixer(spec);  // throws on a bad --strategy
  std::vector<std::string> codes;
  codes.reserve(sources.size());
  for (const auto& s : sources) codes.push_back(s.code);
  const std::vector<const repair::RepairResult*> results =
      fixer.fix_batch(codes);

  int race_total = 0;     // labeled racy
  int race_fixed = 0;     // ... with a fix accepted
  int race_verified = 0;  // ... whose equivalence gate also ran
  int unfixed = 0;        // needed a fix and did not get one
  int check_failures = 0;
  for (std::size_t i = 0; i < sources.size(); ++i) {
    const Source& src = sources[i];
    const repair::RepairResult& r = *results[i];
    const char* status = repair::repair_status_name(r.status);
    switch (r.status) {
      case repair::RepairStatus::NoRaceDetected:
        std::printf("%s: %s\n", src.name.c_str(), status);
        break;
      case repair::RepairStatus::Fixed:
        std::printf("%s: %s by %s [%s] (%d of %d candidate(s) tried%s)\n",
                    src.name.c_str(), status, r.patch_id.c_str(),
                    r.family.c_str(), r.attempts, r.candidates_generated,
                    r.equivalence_checked ? ", output-equivalent"
                                          : ", equivalence unchecked");
        if (show_diff) {
          std::printf("%s", repair::unified_diff(src.code, r.patched).c_str());
        }
        if (src.is_file && !dry_run && !check) {
          std::ofstream out(sources[i].name);
          if (!out) throw Error("cannot write " + src.name);
          out << r.patched;
        }
        break;
      default:
        std::printf("%s: %s: %s\n", src.name.c_str(), status,
                    r.message.c_str());
        ++unfixed;
        break;
    }

    if (src.race_label == 1) {
      ++race_total;
      if (r.status == repair::RepairStatus::Fixed) {
        ++race_fixed;
        if (r.equivalence_checked) ++race_verified;
      } else if (r.message.empty()) {
        // Every miss must carry a structured reason.
        std::printf("%s: CHECK: unfixed without a reason\n", src.name.c_str());
        ++check_failures;
      }
    } else if (src.race_label == 0) {
      // A no-race entry must come back untouched, or -- when the
      // detectors false-positive -- with a patch that at least passed the
      // output-equivalence gate (and is never written in --check mode).
      if (r.status == repair::RepairStatus::NoRaceDetected) {
        if (r.patched != src.code) {
          std::printf("%s: CHECK: no-race entry not byte-identical\n",
                      src.name.c_str());
          ++check_failures;
        }
      } else if (r.status != repair::RepairStatus::Fixed ||
                 !r.equivalence_checked) {
        std::printf("%s: CHECK: no-race entry %s\n", src.name.c_str(), status);
        ++check_failures;
      }
    }
  }

  if (check) {
    const double rate =
        race_total == 0 ? 100.0 : 100.0 * race_fixed / race_total;
    const bool rate_ok = rate >= static_cast<double>(min_fix_rate);
    std::printf(
        "fix check: %d/%d race entr%s fixed (%.1f%%, %d output-equivalent), "
        "min %d%%: %s; %d check failure(s)\n",
        race_fixed, race_total, race_total == 1 ? "y" : "ies", rate,
        race_verified, min_fix_rate, rate_ok ? "OK" : "BELOW", check_failures);
    return (rate_ok && check_failures == 0) ? 0 : 1;
  }
  return unfixed > 0 ? 1 : 0;
}

void print_exploration_table(const std::vector<eval::ExplorationRow>& rows) {
  TextTable table({"strategy", "entries", "detected", "only", "avg sched",
                   "witness dec", "plateau", "errors"});
  for (const eval::ExplorationRow& row : rows) {
    char avg[32];
    std::snprintf(avg, sizeof(avg), "%.2f", row.avg_schedules_to_first_race());
    table.add_row({row.strategy, std::to_string(row.entries),
                   std::to_string(row.detected), std::to_string(row.only_here),
                   avg, std::to_string(row.witness_decisions),
                   std::to_string(row.plateau_stops),
                   std::to_string(row.errors)});
  }
  std::printf("%s", heading("Schedule exploration (race-labeled corpus; "
                            "equal budget per strategy)")
                        .c_str());
  std::printf("%s\n", table.render().c_str());
}

int cmd_explore(const std::vector<std::string>& args) {
  explore::ExploreOptions opts;
  int jobs = 0;
  bool check = false;
  int synth_count = 0;
  std::uint64_t synth_seed = 0;
  bool whole_corpus = false;
  std::string witness_path;
  std::vector<std::string> entry_names;
  std::vector<std::string> paths;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--strategy" && i + 1 < args.size()) {
      opts.strategy = explore::parse_strategy(args[++i]);
    } else if (args[i] == "--budget" && i + 1 < args.size()) {
      opts.max_schedules = static_cast<int>(int_flag("--budget", args[++i]));
    } else if (args[i] == "--depth" && i + 1 < args.size()) {
      opts.pct_depth = static_cast<int>(int_flag("--depth", args[++i]));
    } else if (args[i] == "--plateau" && i + 1 < args.size()) {
      opts.plateau_window = static_cast<int>(int_flag("--plateau", args[++i]));
    } else if (args[i] == "--seed" && i + 1 < args.size()) {
      opts.seed = static_cast<std::uint64_t>(int_flag("--seed", args[++i]));
    } else if (args[i] == "--no-minimize") {
      opts.minimize = false;
    } else if (args[i] == "--jobs" && i + 1 < args.size()) {
      jobs = static_cast<int>(int_flag("--jobs", args[++i]));
    } else if (args[i] == "--check") {
      check = true;
    } else if (args[i] == "--replay" && i + 1 < args.size()) {
      witness_path = args[++i];
    } else if (args[i] == "--entry" && i + 1 < args.size()) {
      entry_names.push_back(args[++i]);
    } else if (args[i] == "--corpus") {
      whole_corpus = true;
    } else if (args[i] == "--synth" && i + 1 < args.size()) {
      synth_count = static_cast<int>(int_flag("--synth", args[++i]));
    } else if (args[i] == "--synth-seed" && i + 1 < args.size()) {
      synth_seed =
          static_cast<std::uint64_t>(int_flag("--synth-seed", args[++i]));
    } else {
      paths.push_back(args[i]);
    }
  }

  // Replay mode: re-run a recorded witness against one source.
  if (!witness_path.empty()) {
    if (paths.size() != 1) {
      std::fprintf(stderr, "error: --replay WITNESS expects exactly one "
                           "source file\n");
      return 2;
    }
    // The operand is either a literal witness string (as printed by a
    // normal run) or a path to a file holding one.
    const bool literal = witness_path.rfind("drbml-witness-", 0) == 0;
    const explore::Witness w = explore::decode_witness(
        literal ? witness_path : trim(read_file(witness_path)));
    const runtime::RunResult r =
        explore::replay_witness(read_file(paths[0]), w);
    std::printf("replay: %s (%llu decision(s), %llu step(s))\n",
                r.report.race_detected ? "DATA RACE" : "no race observed",
                static_cast<unsigned long long>(w.trace.total_decisions()),
                static_cast<unsigned long long>(r.steps));
    for (const auto& pair : r.report.pairs) {
      std::printf("  %s@%d:%d:%c vs. %s@%d:%d:%c\n",
                  pair.first.expr_text.c_str(), pair.first.loc.line,
                  pair.first.loc.col, pair.first.op,
                  pair.second.expr_text.c_str(), pair.second.loc.line,
                  pair.second.loc.col, pair.second.op);
    }
    if (r.faulted) {
      std::printf("  fault: %s\n", r.fault_message.c_str());
    }
    return r.report.race_detected ? 1 : 0;
  }

  // Check mode: the exploration gate over the race-labeled corpus. PCT
  // must match or beat uniform at the same budget, and every witness must
  // replay its race bit-identically (two replays, identical results).
  if (check) {
    obs::Span span(obs::kSpanStageExplore);
    eval::ExperimentOptions eopts;
    eopts.jobs = jobs;
    const std::vector<eval::ExplorationRow> rows =
        eval::exploration_rows(opts, eopts);
    print_exploration_table(rows);

    const eval::ExplorationRow& uniform = rows[0];
    const eval::ExplorationRow& pct = rows[1];

    eval::ArtifactCache& cache = eval::artifact_cache();
    std::vector<const drb::CorpusEntry*> racy;
    for (const drb::CorpusEntry& e : drb::corpus()) {
      if (e.race) racy.push_back(&e);
    }
    explore::ExploreOptions pct_opts = opts;
    pct_opts.strategy = explore::Strategy::Pct;
    const std::vector<int> witness_ok = support::parallel_map(
        jobs, racy, [&](const drb::CorpusEntry* e) {
          const std::string code = drb::drb_code(*e);
          const explore::ExploreResult* r = nullptr;
          try {
            r = &cache.explore_result(code, pct_opts);
          } catch (const Error&) {
            return 1;  // exploration errored: no witness to check
          }
          if (!r->race_detected) return 1;
          if (r->witness.empty()) return 0;
          const explore::Witness w = explore::decode_witness(r->witness);
          const runtime::RunResult a =
              explore::replay_witness(code, w, pct_opts.run);
          const runtime::RunResult b =
              explore::replay_witness(code, w, pct_opts.run);
          const bool identical =
              a.output == b.output && a.exit_code == b.exit_code &&
              a.steps == b.steps && a.faulted == b.faulted &&
              a.report.race_detected == b.report.race_detected &&
              a.report.pairs == b.report.pairs;
          return (a.report.race_detected && identical) ? 1 : 0;
        });
    int bad_witnesses = 0;
    for (std::size_t i = 0; i < witness_ok.size(); ++i) {
      if (witness_ok[i] == 0) {
        std::printf("%s: CHECK: witness does not replay its race "
                    "bit-identically\n",
                    racy[i]->name.c_str());
        ++bad_witnesses;
      }
    }

    const bool pct_ok = pct.detected >= uniform.detected;
    const bool pct_only_ok = pct.only_here >= 1;
    std::printf(
        "explore check: pct %d/%d vs uniform %d/%d detected (budget %d): "
        "%s; %d pct-only entr%s: %s; %d bad witness(es)\n",
        pct.detected, pct.entries, uniform.detected, uniform.entries,
        opts.max_schedules, pct_ok ? "OK" : "BEHIND", pct.only_here,
        pct.only_here == 1 ? "y" : "ies", pct_only_ok ? "OK" : "MISSING",
        bad_witnesses);
    return (pct_ok && pct_only_ok && bad_witnesses == 0) ? 0 : 1;
  }

  std::vector<std::pair<std::string, std::string>> sources;  // (name, code)
  for (const auto& path : paths) sources.emplace_back(path, read_file(path));
  for (const auto& name : entry_names) {
    const drb::CorpusEntry* e = drb::find_entry(name);
    if (e == nullptr) throw Error("no such entry: " + name);
    sources.emplace_back(e->name, drb::drb_code(*e));
  }
  if (whole_corpus) {
    for (const auto& e : drb::corpus()) {
      sources.emplace_back(e.name, drb::drb_code(e));
    }
  }
  if (synth_count > 0) {
    drb::SynthConfig config;
    config.count = synth_count;
    config.seed = synth_seed;
    for (const drb::SynthEntry& e : drb::synthesize(config)) {
      sources.emplace_back(e.name, e.code);
    }
  }
  if (sources.empty()) return usage();

  struct Outcome {
    explore::ExploreResult result;
    std::string error;
  };
  const std::vector<Outcome> outcomes = support::parallel_map(
      jobs, sources, [&](const std::pair<std::string, std::string>& src) {
        Outcome o;
        try {
          o.result = explore::explore_source(src.second, opts);
        } catch (const Error& e) {
          o.error = e.what();
        }
        return o;
      });

  bool any_race = false;
  bool any_error = false;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const Outcome& o = outcomes[i];
    if (!o.error.empty()) {
      std::fprintf(stderr, "%s: error: %s\n", sources[i].first.c_str(),
                   o.error.c_str());
      any_error = true;
      continue;
    }
    const explore::ExploreResult& r = o.result;
    if (r.race_detected) {
      any_race = true;
      std::printf(
          "%s: DATA RACE (%s schedule %d of %d, minimized %llu -> %llu "
          "decision(s))\n",
          sources[i].first.c_str(), explore::strategy_name(opts.strategy),
          r.first_race_schedule + 1, r.schedules_run,
          static_cast<unsigned long long>(r.original_decisions),
          static_cast<unsigned long long>(r.witness_decisions));
      for (const auto& pair : r.report.pairs) {
        std::printf("  %s@%d:%d:%c vs. %s@%d:%d:%c\n",
                    pair.first.expr_text.c_str(), pair.first.loc.line,
                    pair.first.loc.col, pair.first.op,
                    pair.second.expr_text.c_str(), pair.second.loc.line,
                    pair.second.loc.col, pair.second.op);
      }
      std::printf("  witness: %s\n", r.witness.c_str());
    } else {
      std::printf("%s: no race in %d %s schedule(s)%s (%zu coverage "
                  "point(s))\n",
                  sources[i].first.c_str(), r.schedules_run,
                  explore::strategy_name(opts.strategy),
                  r.stopped_on_plateau ? ", stopped on coverage plateau" : "",
                  r.coverage.size());
    }
  }
  if (any_error) return 2;
  return any_race ? 1 : 0;
}

// Runs the full corpus pipeline stage by stage -- dataset construction,
// token filtering, static analysis, dynamic detection, lint, verified
// repair -- timing each stage through the obs stage timers and printing a
// per-stage table plus the deterministic counter snapshot. With
// --metrics FILE the snapshot is also written as JSON at exit; its bytes
// are identical at any --jobs value (timers are excluded as unstable).
int cmd_stats(const std::vector<std::string>& args) {
  eval::ExperimentOptions eopts;
  std::string cache_path;
  bool run_repair = true;
  bool run_explore = true;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--jobs" && i + 1 < args.size()) {
      eopts.jobs = static_cast<int>(int_flag("--jobs", args[++i]));
    } else if (args[i] == "--cache" && i + 1 < args.size()) {
      cache_path = args[++i];
    } else if (args[i] == "--no-repair") {
      run_repair = false;
    } else if (args[i] == "--no-explore") {
      run_explore = false;
    } else {
      return usage();
    }
  }

  eval::ArtifactCache& cache = eval::artifact_cache();
  if (!cache_path.empty() && std::filesystem::exists(cache_path)) {
    const std::size_t seeded = cache.load_snapshot(cache_path);
    if (seeded > 0) {
      std::printf("cache: seeded %zu entries from %s\n", seeded,
                  cache_path.c_str());
    }
  }

  // Stage timers need the metrics sink on; flipping it here does not make
  // an exit file appear (that takes --metrics FILE / DRBML_METRICS).
  obs::MetricsRegistry& reg = obs::metrics();
  reg.set_enabled(true);

  TextTable table({"stage", "wall ms", "cpu ms", "items"});
  const auto run_stage = [&](const obs::SpanDesc& span_desc,
                             const obs::MetricDesc& timer_desc,
                             auto&& stage_fn) {
    obs::Timer& timer = reg.timer(timer_desc);
    std::uint64_t items = 0;
    {
      obs::Span span(span_desc, {}, &timer);
      items = stage_fn();
    }
    char wall[32];
    char cpu[32];
    std::snprintf(wall, sizeof(wall), "%.1f", timer.wall_ns() / 1e6);
    std::snprintf(cpu, sizeof(cpu), "%.1f", timer.cpu_ns() / 1e6);
    table.add_row({span_desc.name, wall, cpu, std::to_string(items)});
  };

  run_stage(obs::kSpanStageDataset, obs::kStageDatasetTime,
            [] { return dataset::dataset().size(); });
  run_stage(obs::kSpanStageTokens, obs::kStageTokensTime,
            [] { return eval::token_filtered_subset().size(); });

  std::vector<const drb::CorpusEntry*> entries;
  for (const drb::CorpusEntry& e : drb::corpus()) entries.push_back(&e);

  run_stage(obs::kSpanStageStatic, obs::kStageStaticTime, [&] {
    const std::vector<int> racy = support::parallel_map(
        eopts.jobs, entries, [&](const drb::CorpusEntry* e) {
          return cache.static_report(drb::drb_code(*e), {}).race_detected ? 1
                                                                          : 0;
        });
    std::uint64_t n = 0;
    for (int r : racy) n += static_cast<std::uint64_t>(r);
    return n;
  });
  run_stage(obs::kSpanStageDynamic, obs::kStageDynamicTime, [&] {
    const std::vector<int> racy = support::parallel_map(
        eopts.jobs, entries, [&](const drb::CorpusEntry* e) {
          try {
            return cache.dynamic_report(drb::drb_code(*e), {}).race_detected
                       ? 1
                       : 0;
          } catch (const Error&) {
            return 0;  // non-executable entries fall out of the dynamic stage
          }
        });
    std::uint64_t n = 0;
    for (int r : racy) n += static_cast<std::uint64_t>(r);
    return n;
  });
  run_stage(obs::kSpanStageLint, obs::kStageLintTime, [&] {
    const std::vector<std::size_t> counts = support::parallel_map(
        eopts.jobs, entries, [&](const drb::CorpusEntry* e) {
          try {
            return cache.lint_report(drb::drb_code(*e)).diagnostics.size();
          } catch (const Error&) {
            return std::size_t{0};
          }
        });
    std::uint64_t n = 0;
    for (std::size_t c : counts) n += c;
    return n;
  });
  if (run_explore) {
    run_stage(obs::kSpanStageExplore, obs::kStageExploreTime, [&] {
      const std::vector<eval::ExplorationRow> rows =
          eval::exploration_rows({}, eopts);
      // Rows are [uniform, pct]; items = entries the PCT loop detected.
      return rows.empty() ? std::uint64_t{0}
                          : static_cast<std::uint64_t>(rows.back().detected);
    });
  }
  if (run_repair) {
    run_stage(obs::kSpanStageRepair, obs::kStageRepairTime, [&] {
      const std::vector<eval::RepairRow> rows = eval::table7_rows({}, eopts);
      // The "(all)" total row is last; items = entries with a verified fix.
      return rows.empty() ? std::uint64_t{0}
                          : static_cast<std::uint64_t>(rows.back().fixed);
    });
  }

  std::printf("%s", heading("Pipeline stages (items: entries produced, "
                            "racy verdicts, diagnostics, fixes)")
                        .c_str());
  std::printf("%s\n", table.render().c_str());
  std::printf("%s", reg.to_text().c_str());

  if (!cache_path.empty()) {
    if (cache.save_snapshot(cache_path)) {
      std::printf("cache: snapshot written to %s\n", cache_path.c_str());
    } else {
      std::fprintf(stderr, "warning: cannot write cache snapshot %s\n",
                   cache_path.c_str());
    }
  }
  return 0;
}

std::atomic<bool> g_serve_stop{false};

void serve_signal_handler(int) { g_serve_stop.store(true); }

/// Installs SIGINT/SIGTERM handlers *without* SA_RESTART, so a signal
/// interrupts the daemon's blocking read/accept with EINTR and the serve
/// loop sees the stop flag -- the graceful-drain path, not process death.
void install_serve_signal_handlers() {
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = serve_signal_handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
}

/// Serves NDJSON sessions on a unix socket, one connection at a time,
/// until a signal or shutdown verb. Returns responses written.
std::uint64_t serve_unix_socket(serve::Server& server,
                                const std::string& path) {
  sockaddr_un addr;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw Error("--socket path too long: " + path);
  }
  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) throw Error("cannot create unix socket");
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  ::unlink(path.c_str());
  if (::bind(listener, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listener, 8) != 0) {
    ::close(listener);
    throw Error("cannot bind/listen on " + path);
  }
  std::fprintf(stderr, "serve: listening on %s\n", path.c_str());
  std::uint64_t written = 0;
  while (!g_serve_stop.load() && !server.shutdown_requested()) {
    const int conn = ::accept(listener, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) continue;
      break;
    }
    written += server.serve_fd(conn, conn, &g_serve_stop);
    ::close(conn);
  }
  ::close(listener);
  ::unlink(path.c_str());
  return written;
}

// Long-lived detection daemon. Requests are NDJSON lines (protocol in
// docs/SERVE.md); responses go to stdout (or back down the socket). The
// process exits after a graceful drain on EOF, SIGINT/SIGTERM, or a
// `shutdown` request.
int cmd_serve(const std::vector<std::string>& args) {
  serve::ServerOptions opts;
  opts.cache_budget = eval::env_cache_budget();
  std::string socket_path;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--socket" && i + 1 < args.size()) {
      socket_path = args[++i];
    } else if (args[i] == "--jobs" && i + 1 < args.size()) {
      opts.jobs = static_cast<int>(int_flag("--jobs", args[++i]));
    } else if (args[i] == "--queue-limit" && i + 1 < args.size()) {
      const std::int64_t v = int_flag("--queue-limit", args[++i]);
      if (v < 0) throw Error("--queue-limit expects >= 0 (0 = unbounded)");
      opts.queue_limit = static_cast<std::size_t>(v);
    } else if (args[i] == "--deadline-ms" && i + 1 < args.size()) {
      const std::int64_t v = int_flag("--deadline-ms", args[++i]);
      if (v < 0) throw Error("--deadline-ms expects >= 0 (0 = none)");
      opts.default_deadline_ms = v;
    } else if (args[i] == "--cache-budget" && i + 1 < args.size()) {
      const std::int64_t v = int_flag("--cache-budget", args[++i]);
      if (v < 0) throw Error("--cache-budget expects >= 0 bytes (0 = unlimited)");
      opts.cache_budget = static_cast<std::uint64_t>(v);
    } else if (args[i] == "--cache" && i + 1 < args.size()) {
      opts.cache_snapshot = args[++i];
    } else {
      return usage();
    }
  }

  install_serve_signal_handlers();
  serve::Server server(opts);
  const std::uint64_t written =
      socket_path.empty() ? server.serve_fd(STDIN_FILENO, STDOUT_FILENO,
                                            &g_serve_stop)
                          : serve_unix_socket(server, socket_path);
  server.drain();
  std::fprintf(stderr, "serve: drained after %llu responses\n",
               static_cast<unsigned long long>(written));
  return 0;
}

int cmd_corpus(const std::vector<std::string>& args) {
  std::string pattern;
  int limit = -1;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--pattern" && i + 1 < args.size()) pattern = args[++i];
    if (args[i] == "--limit" && i + 1 < args.size()) {
      limit = static_cast<int>(int_flag("--limit", args[++i]));
    }
  }
  int shown = 0;
  for (const auto& e : drb::corpus()) {
    if (!pattern.empty() && e.pattern != pattern) continue;
    std::printf("%-52s %-4s %-3s %s\n", e.name.c_str(),
                e.race ? "yes" : "no", e.label.c_str(), e.pattern.c_str());
    if (limit > 0 && ++shown >= limit) break;
  }
  return 0;
}

int cmd_entry(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  const drb::CorpusEntry* e = drb::find_entry(args[0]);
  if (e == nullptr) {
    std::fprintf(stderr, "no such entry: %s\n", args[0].c_str());
    return 2;
  }
  std::printf("%s", drb::drb_code(*e).c_str());
  return 0;
}

int cmd_dataset(const std::vector<std::string>& args) {
  std::filesystem::path out = "drb-ml";
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--out" && i + 1 < args.size()) out = args[++i];
  }
  std::filesystem::create_directories(out);
  for (const dataset::Entry& e : dataset::dataset()) {
    char name[32];
    std::snprintf(name, sizeof(name), "DRB-ML-%03d.json", e.id);
    std::ofstream file(out / name);
    file << e.to_json().dump_pretty() << "\n";
  }
  std::printf("wrote %zu entries to %s/\n", dataset::dataset().size(),
              out.string().c_str());
  return 0;
}

int cmd_synth(const std::vector<std::string>& args) {
  drb::SynthConfig config;
  std::filesystem::path out = "synth";
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--count" && i + 1 < args.size()) {
      config.count = static_cast<int>(int_flag("--count", args[++i]));
    } else if (args[i] == "--seed" && i + 1 < args.size()) {
      config.seed = static_cast<std::uint64_t>(int_flag("--seed", args[++i]));
    } else if (args[i] == "--out" && i + 1 < args.size()) {
      out = args[++i];
    }
  }
  std::filesystem::create_directories(out);
  int yes = 0;
  for (const drb::SynthEntry& e : drb::synthesize(config)) {
    std::ofstream file(out / e.name);
    file << e.code;
    yes += e.race ? 1 : 0;
  }
  std::printf("wrote %d synthetic kernels (%d racy) to %s/\n", config.count,
              yes, out.string().c_str());
  return 0;
}

// Consumes a global `--backend interp|vm` flag (any position), setting the
// process-wide default execution backend. Mirrors obs::consume_obs_flags.
void consume_backend_flag(std::vector<std::string>& args) {
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] != "--backend") continue;
    if (i + 1 >= args.size()) {
      throw drbml::Error("--backend requires a value (interp|vm)");
    }
    const std::string value = args[i + 1];
    if (value == "interp") {
      runtime::set_default_backend(runtime::Backend::Interp);
    } else if (value == "vm") {
      runtime::set_default_backend(runtime::Backend::Vm);
    } else {
      throw drbml::Error("unknown backend '" + value +
                         "' (expected interp|vm)");
    }
    args.erase(args.begin() + static_cast<std::ptrdiff_t>(i),
               args.begin() + static_cast<std::ptrdiff_t>(i) + 2);
    return;
  }
}

int cmd_detectors() {
  for (const auto& spec : core::available_detectors()) {
    std::printf("%s\n", spec.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  drbml::obs::consume_obs_flags(args);
  try {
    consume_backend_flag(args);
    if (cmd == "analyze") return cmd_analyze(args);
    if (cmd == "graph") return cmd_graph(args);
    if (cmd == "lint") return cmd_lint(args);
    if (cmd == "fix") return cmd_fix(args);
    if (cmd == "explore") return cmd_explore(args);
    if (cmd == "stats") return cmd_stats(args);
    if (cmd == "serve") return cmd_serve(args);
    if (cmd == "corpus") return cmd_corpus(args);
    if (cmd == "entry") return cmd_entry(args);
    if (cmd == "dataset") return cmd_dataset(args);
    if (cmd == "synth") return cmd_synth(args);
    if (cmd == "detectors") return cmd_detectors();
    if (cmd == "help" || cmd == "--help" || cmd == "-h") {
      usage();
      return 0;
    }
  } catch (const drbml::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  return usage();
}
