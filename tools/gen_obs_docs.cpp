// gen_obs_docs -- keeps docs/OBSERVABILITY.md in sync with the code's
// span/metric catalog, and validates intra-repo markdown links.
//
//   gen_obs_docs --print spans|metrics      render one catalog section
//   gen_obs_docs --update [FILE]            rewrite the generated sections
//                                           (between the BEGIN/END GENERATED
//                                           markers) in FILE
//   gen_obs_docs --check [FILE]             exit 1 if the generated sections
//                                           are stale (the docs gate)
//   gen_obs_docs --check-links FILE...      exit 1 on broken relative links
//                                           or missing #anchors in the given
//                                           markdown files
//
// FILE defaults to docs/OBSERVABILITY.md. The generated sections are
// rendered from the same obs::SpanDesc/obs::MetricDesc instances the
// instrumentation registers, so the documented catalog cannot drift from
// the code: adding a metric without re-running --update fails the gate.
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "obs/catalog.hpp"

namespace {

namespace fs = std::filesystem;
using drbml::obs::render_metric_catalog_md;
using drbml::obs::render_span_catalog_md;

constexpr const char* kDefaultDoc = "docs/OBSERVABILITY.md";

int usage() {
  std::fprintf(stderr,
               "usage: gen_obs_docs --print spans|metrics\n"
               "       gen_obs_docs --update [FILE]\n"
               "       gen_obs_docs --check [FILE]\n"
               "       gen_obs_docs --check-links FILE...\n");
  return 2;
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return false;
  std::ostringstream ss;
  ss << file.rdbuf();
  out = ss.str();
  return true;
}

std::string begin_marker(const std::string& section) {
  return "<!-- BEGIN GENERATED: " + section + " -->";
}

std::string end_marker(const std::string& section) {
  return "<!-- END GENERATED: " + section + " -->";
}

/// Replaces the payload between the section's markers. Returns false if
/// either marker is missing or out of order.
bool splice_section(std::string& doc, const std::string& section,
                    const std::string& payload) {
  const std::string begin = begin_marker(section);
  const std::string end = end_marker(section);
  const std::size_t b = doc.find(begin);
  if (b == std::string::npos) return false;
  const std::size_t content = b + begin.size();
  const std::size_t e = doc.find(end, content);
  if (e == std::string::npos) return false;
  doc = doc.substr(0, content) + "\n" + payload + doc.substr(e);
  return true;
}

std::string rendered(const std::string& section) {
  return section == "spans" ? render_span_catalog_md()
                            : render_metric_catalog_md();
}

int update_doc(const std::string& path, bool check_only) {
  std::string doc;
  if (!read_file(path, doc)) {
    std::fprintf(stderr, "gen_obs_docs: cannot read %s\n", path.c_str());
    return 2;
  }
  std::string updated = doc;
  for (const char* section : {"spans", "metrics"}) {
    if (!splice_section(updated, section, rendered(section))) {
      std::fprintf(stderr, "gen_obs_docs: %s: missing '%s' markers\n",
                   path.c_str(), section);
      return 2;
    }
  }
  if (updated == doc) {
    std::printf("gen_obs_docs: %s is current\n", path.c_str());
    return 0;
  }
  if (check_only) {
    std::fprintf(stderr,
                 "gen_obs_docs: %s is STALE -- run gen_obs_docs --update %s\n",
                 path.c_str(), path.c_str());
    return 1;
  }
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) {
    std::fprintf(stderr, "gen_obs_docs: cannot write %s\n", path.c_str());
    return 2;
  }
  file << updated;
  std::printf("gen_obs_docs: updated %s\n", path.c_str());
  return 0;
}

// ------------------------------------------------------------ link checker

/// GitHub-style heading anchor: lowercase; keep alphanumerics, hyphens,
/// and underscores; spaces become hyphens; everything else (punctuation,
/// backticks) is dropped.
std::string heading_slug(const std::string& heading) {
  std::string slug;
  for (char c : heading) {
    const auto u = static_cast<unsigned char>(c);
    if (std::isalnum(u) != 0 || c == '-' || c == '_') {
      slug += static_cast<char>(std::tolower(u));
    } else if (c == ' ') {
      slug += '-';
    }
  }
  return slug;
}

/// All anchors a markdown file defines (heading slugs with GitHub's -N
/// suffixing for duplicates).
std::set<std::string> collect_anchors(const std::string& text) {
  std::set<std::string> anchors;
  std::istringstream lines(text);
  std::string line;
  bool in_fence = false;
  while (std::getline(lines, line)) {
    if (line.rfind("```", 0) == 0) {
      in_fence = !in_fence;
      continue;
    }
    if (in_fence || line.empty() || line[0] != '#') continue;
    std::size_t level = 0;
    while (level < line.size() && line[level] == '#') ++level;
    if (level >= line.size() || line[level] != ' ') continue;
    const std::string base = heading_slug(line.substr(level + 1));
    if (anchors.insert(base).second) continue;
    for (int n = 1;; ++n) {
      const std::string dedup = base + "-" + std::to_string(n);
      if (anchors.insert(dedup).second) break;
    }
  }
  return anchors;
}

struct Link {
  std::string target;
  int line;
};

/// Extracts [text](target) links, skipping fenced code blocks and inline
/// code spans.
std::vector<Link> collect_links(const std::string& text) {
  std::vector<Link> links;
  std::istringstream lines(text);
  std::string line;
  int lineno = 0;
  bool in_fence = false;
  while (std::getline(lines, line)) {
    ++lineno;
    if (line.rfind("```", 0) == 0) {
      in_fence = !in_fence;
      continue;
    }
    if (in_fence) continue;
    bool in_code = false;
    for (std::size_t i = 0; i < line.size(); ++i) {
      if (line[i] == '`') {
        in_code = !in_code;
        continue;
      }
      if (in_code || line[i] != ']' || i + 1 >= line.size() ||
          line[i + 1] != '(') {
        continue;
      }
      const std::size_t close = line.find(')', i + 2);
      if (close == std::string::npos) continue;
      links.push_back({line.substr(i + 2, close - i - 2), lineno});
    }
  }
  return links;
}

bool is_external(const std::string& target) {
  return target.rfind("http://", 0) == 0 || target.rfind("https://", 0) == 0 ||
         target.rfind("mailto:", 0) == 0;
}

int check_links(const std::vector<std::string>& paths) {
  int broken = 0;
  for (const std::string& path : paths) {
    std::string text;
    if (!read_file(path, text)) {
      std::fprintf(stderr, "gen_obs_docs: cannot read %s\n", path.c_str());
      return 2;
    }
    const fs::path dir = fs::path(path).parent_path();
    const std::set<std::string> own_anchors = collect_anchors(text);
    for (const Link& link : collect_links(text)) {
      if (is_external(link.target) || link.target.empty()) continue;
      std::string file_part = link.target;
      std::string anchor;
      const std::size_t hash = link.target.find('#');
      if (hash != std::string::npos) {
        file_part = link.target.substr(0, hash);
        anchor = link.target.substr(hash + 1);
      }
      if (file_part.empty()) {
        if (own_anchors.count(anchor) == 0) {
          std::fprintf(stderr, "%s:%d: broken anchor '#%s'\n", path.c_str(),
                       link.line, anchor.c_str());
          ++broken;
        }
        continue;
      }
      const fs::path target = dir / file_part;
      if (!fs::exists(target)) {
        std::fprintf(stderr, "%s:%d: broken link '%s' (no such file)\n",
                     path.c_str(), link.line, link.target.c_str());
        ++broken;
        continue;
      }
      if (!anchor.empty()) {
        std::string target_text;
        if (!read_file(target.string(), target_text)) continue;
        if (collect_anchors(target_text).count(anchor) == 0) {
          std::fprintf(stderr, "%s:%d: broken anchor '%s'\n", path.c_str(),
                       link.line, link.target.c_str());
          ++broken;
        }
      }
    }
  }
  if (broken > 0) {
    std::fprintf(stderr, "gen_obs_docs: %d broken link(s)\n", broken);
    return 1;
  }
  std::printf("gen_obs_docs: links ok (%zu file(s))\n", paths.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) return usage();
  const std::string& mode = args[0];
  if (mode == "--print") {
    if (args.size() != 2 || (args[1] != "spans" && args[1] != "metrics")) {
      return usage();
    }
    std::printf("%s", rendered(args[1]).c_str());
    return 0;
  }
  if (mode == "--update" || mode == "--check") {
    if (args.size() > 2) return usage();
    const std::string path = args.size() == 2 ? args[1] : kDefaultDoc;
    return update_doc(path, mode == "--check");
  }
  if (mode == "--check-links") {
    if (args.size() < 2) return usage();
    return check_links({args.begin() + 1, args.end()});
  }
  return usage();
}
