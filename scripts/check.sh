#!/usr/bin/env bash
# Tier-1 verification plus the race-check-the-race-checkers pass.
#
#   scripts/check.sh            full suite + TSan parallel suite
#   scripts/check.sh --fast     full suite only (skip the TSan build)
#
# Stage 1 is the repository's tier-1 gate: configure, build, run every
# test. Stage 2 rebuilds under ThreadSanitizer (-DDRBML_SANITIZE=thread)
# and runs the `parallel`-labelled suites -- the thread pool, the
# memoized artifact caches, and the parallel experiment executor -- so
# the infrastructure this repo uses to find data races is itself checked
# for data races.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== stage 1: tier-1 build + tests =="
cmake -B build -S . >/dev/null
cmake --build build -j
(cd build && ctest --output-on-failure -j)

if [[ "${1:-}" == "--fast" ]]; then
  echo "== skipping TSan stage (--fast) =="
  exit 0
fi

echo "== stage 2: ThreadSanitizer build of the parallel suites =="
cmake -B build-tsan -S . -DDRBML_SANITIZE=thread >/dev/null
cmake --build build-tsan -j --target \
  parallel_test parallel_determinism_test detector_differential_test
(cd build-tsan && ctest -L parallel --output-on-failure)
echo "== all checks passed =="
