#!/usr/bin/env bash
# Tier-1 verification plus the race-check-the-race-checkers pass.
#
#   scripts/check.sh            full suite + TSan parallel suite
#   scripts/check.sh --fast     full suite only (skip the TSan build)
#
# Stage 1 is the repository's tier-1 gate: configure, build, run every
# test. Stage 2 is the self-lint gate: the OpenMP correctness linter
# must survive the full corpus plus a fixed synthetic batch with zero
# crashes and a shape-valid SARIF log. Stage 2b is the repair gate:
# every race-labeled corpus entry must either gain a detector-verified
# fix or report a structured no-candidate/rejected reason, the verified
# fix rate must clear 60%, and no-race entries must come back
# byte-identical (or, on a detector false positive, with a patch that
# passed the output-equivalence gate -- never written under --check).
# Stage 2c is the docs gate: the generated span/metric catalog sections
# in docs/OBSERVABILITY.md must match the code (gen_obs_docs --check),
# and every relative link and #anchor in the top-level and docs/
# markdown must resolve (gen_obs_docs --check-links). Stage 2d is the
# exploration gate: at equal schedule budget PCT must match or beat the
# uniform walk on detected races over the race-labeled corpus with at
# least one PCT-only entry, and every reported race must ship a
# minimized witness that replays bit-identically. Stage 2e is the
# static-analysis gate: the precision differential (ctest -L precision)
# asserts strictly fewer false positives than the legacy detector
# configuration with zero recall loss, and clang-tidy (when installed)
# runs the curated .clang-tidy check set over src/. Stage 3 rebuilds
# under ThreadSanitizer (-DDRBML_SANITIZE=thread) and runs the
# `parallel`-labelled suites -- the thread pool, the memoized artifact
# caches, the parallel experiment executor, the lint and repair
# fan-outs, and the observability layer -- so the infrastructure this
# repo uses to find data races is itself checked for data races.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== stage 1: tier-1 build + tests =="
cmake -B build -S . >/dev/null
cmake --build build -j
(cd build && ctest --output-on-failure -j)

echo "== stage 2: self-lint gate (corpus + 200 synth kernels) =="
# The linter must digest every corpus entry and a fixed synthetic batch
# without a single crash or parse failure, and the combined SARIF log
# must satisfy the 2.1.0 shape invariants (--check validates both).
build/tools/drbml lint --corpus --synth 200 --seed 7 --check >/dev/null

echo "== stage 2b: repair gate (verified fixes over the corpus) =="
build/tools/drbml fix --corpus --check --min-fix-rate 60 --dry-run \
  | tail -n 1

echo "== stage 2c: docs gate (generated catalog + link check) =="
build/tools/gen_obs_docs --check
build/tools/gen_obs_docs --check-links \
  README.md DESIGN.md EXPERIMENTS.md ROADMAP.md docs/*.md

echo "== stage 2d: exploration gate (PCT vs uniform + witness replay) =="
build/tools/drbml explore --corpus --check --budget 12 | tail -n 1

echo "== stage 2e: static analysis gate (clang-tidy + precision) =="
# The precision gate re-runs the corpus differential: the default
# detector must report strictly fewer false positives than the legacy
# configuration with zero recall loss, and every verdict must carry a
# round-trippable evidence chain (tests/static_precision_test.cpp).
(cd build && ctest -L precision --output-on-failure)
# clang-tidy runs the curated .clang-tidy check set over src/. The
# toolchain image does not always ship clang-tidy, so absence is a
# skip, not a failure.
if command -v clang-tidy >/dev/null 2>&1; then
  cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  find src -name '*.cpp' -print0 \
    | xargs -0 -P "$(nproc)" -n 8 clang-tidy -p build --quiet
else
  echo "clang-tidy not found; skipping the tidy half of stage 2e"
fi

if [[ "${1:-}" == "--fast" ]]; then
  echo "== skipping TSan stage (--fast) =="
  exit 0
fi

echo "== stage 3: ThreadSanitizer build of the parallel suites =="
cmake -B build-tsan -S . -DDRBML_SANITIZE=thread >/dev/null
cmake --build build-tsan -j --target \
  parallel_test parallel_determinism_test detector_differential_test \
  explore_test metamorphic_test lint_test repair_test obs_test
(cd build-tsan && ctest -L parallel --output-on-failure)
echo "== all checks passed =="
