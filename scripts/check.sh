#!/usr/bin/env bash
# Tier-1 verification plus the race-check-the-race-checkers pass.
#
#   scripts/check.sh            full suite + TSan parallel suite
#   scripts/check.sh --fast     full suite only (skip the TSan build)
#
# Stage 1 is the repository's tier-1 gate: configure, build, run every
# test. Stage 2 is the self-lint gate: the OpenMP correctness linter
# must survive the full corpus plus a fixed synthetic batch with zero
# crashes and a shape-valid SARIF log. Stage 2b is the repair gate:
# every race-labeled corpus entry must either gain a detector-verified
# fix or report a structured no-candidate/rejected reason, the verified
# fix rate must clear 60%, and no-race entries must come back
# byte-identical (or, on a detector false positive, with a patch that
# passed the output-equivalence gate -- never written under --check).
# Stage 2c is the docs gate: the generated span/metric catalog sections
# in docs/OBSERVABILITY.md must match the code (gen_obs_docs --check),
# and every relative link and #anchor in the top-level and docs/
# markdown must resolve (gen_obs_docs --check-links). Stage 2d is the
# exploration gate: at equal schedule budget PCT must match or beat the
# uniform walk on detected races over the race-labeled corpus with at
# least one PCT-only entry, and every reported race must ship a
# minimized witness that replays bit-identically. Stage 2e is the
# static-analysis gate: the precision differential (ctest -L precision)
# asserts strictly fewer false positives than the legacy detector
# configuration with zero recall loss, and clang-tidy (when installed)
# runs the curated .clang-tidy check set over src/. Stage 2f is the
# serve gate: the detection-as-a-service daemon must answer 50 mixed
# analyze/lint requests over the stdio transport with zero drops and
# zero errors, the repeats must hit the warm shared cache, and the
# bench_serve load generator must sustain its latency/QPS contract
# (refreshing BENCH_serve.json). Stage 2g is the bytecode-VM gate: the
# differential suite (ctest -L vm) proves the VM backend bit-identical
# to the AST interpreter over the full corpus, and bench_vm fails the
# build if the VM's dynamic-stage sweep is less than 5x faster than the
# interp reference or any fingerprint diverges (refreshing
# BENCH_vm.json). Stage 3 rebuilds
# under ThreadSanitizer (-DDRBML_SANITIZE=thread) and runs the
# `parallel`-labelled suites -- the thread pool, the memoized artifact
# caches, the parallel experiment executor, the lint and repair
# fan-outs, and the observability layer -- so the infrastructure this
# repo uses to find data races is itself checked for data races.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== stage 1: tier-1 build + tests =="
cmake -B build -S . >/dev/null
cmake --build build -j
(cd build && ctest --output-on-failure -j)

echo "== stage 2: self-lint gate (corpus + 200 synth kernels) =="
# The linter must digest every corpus entry and a fixed synthetic batch
# without a single crash or parse failure, and the combined SARIF log
# must satisfy the 2.1.0 shape invariants (--check validates both).
build/tools/drbml lint --corpus --synth 200 --seed 7 --check >/dev/null

echo "== stage 2b: repair gate (verified fixes over the corpus) =="
build/tools/drbml fix --corpus --check --min-fix-rate 60 --dry-run \
  | tail -n 1

echo "== stage 2c: docs gate (generated catalog + link check) =="
build/tools/gen_obs_docs --check
build/tools/gen_obs_docs --check-links \
  README.md DESIGN.md EXPERIMENTS.md ROADMAP.md docs/*.md

echo "== stage 2d: exploration gate (PCT vs uniform + witness replay) =="
build/tools/drbml explore --corpus --check --budget 12 | tail -n 1

echo "== stage 2e: static analysis gate (clang-tidy + precision) =="
# The precision gate re-runs the corpus differential: the default
# detector must report strictly fewer false positives than the legacy
# configuration with zero recall loss, and every verdict must carry a
# round-trippable evidence chain (tests/static_precision_test.cpp).
(cd build && ctest -L precision --output-on-failure)
# clang-tidy runs the curated .clang-tidy check set over src/. The
# toolchain image does not always ship clang-tidy, so absence is a
# skip, not a failure.
if command -v clang-tidy >/dev/null 2>&1; then
  cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  find src -name '*.cpp' -print0 \
    | xargs -0 -P "$(nproc)" -n 8 clang-tidy -p build --quiet
else
  echo "clang-tidy not found; skipping the tidy half of stage 2e"
fi

echo "== stage 2f: serve gate (daemon round-trip + load bench) =="
# 50 mixed analyze/lint requests (two programs, repeated) plus a final
# stats probe, over the stdio transport; EOF triggers the graceful
# drain. Every id must come back exactly once with ok:true, and the
# repeats must have hit the warm shared cache (hits > 0 in the final
# stats snapshot -- the daemon starts cold, so every hit is a repeat).
serve_tmp=$(mktemp -d)
racy='int main() {\n  int sum = 0;\n  int a[100];\n#pragma omp parallel for\n  for (int i = 0; i < 100; i++) sum = sum + a[i];\n  return sum;\n}\n'
safe='int main() {\n  int a[100];\n#pragma omp parallel for\n  for (int i = 0; i < 100; i++) a[i] = i;\n  return 0;\n}\n'
{
  for i in $(seq 1 50); do
    if (( i % 2 )); then
      printf '{"id":"r%d","verb":"analyze","detector":"static","code":"%s"}\n' \
        "$i" "$racy"
    else
      printf '{"id":"r%d","verb":"lint","code":"%s"}\n' "$i" "$safe"
    fi
  done
  printf '{"id":"final-stats","verb":"stats"}\n'
} > "$serve_tmp/requests.ndjson"
build/tools/drbml serve --jobs 4 \
  < "$serve_tmp/requests.ndjson" > "$serve_tmp/responses.ndjson"
resp_count=$(wc -l < "$serve_tmp/responses.ndjson")
if [[ "$resp_count" -ne 51 ]]; then
  echo "serve gate: expected 51 responses, got $resp_count" >&2; exit 1
fi
if grep -q '"ok":false' "$serve_tmp/responses.ndjson"; then
  echo "serve gate: error responses in a well-formed workload" >&2; exit 1
fi
for i in $(seq 1 50); do
  grep -q "\"id\":\"r$i\"" "$serve_tmp/responses.ndjson" \
    || { echo "serve gate: response for id r$i missing" >&2; exit 1; }
done
hits=$(grep '"id":"final-stats"' "$serve_tmp/responses.ndjson" \
  | sed 's/.*"hits"://; s/[^0-9].*//')
if [[ -z "$hits" || "$hits" -eq 0 ]]; then
  echo "serve gate: warm cache hits not above cold (hits=${hits:-?})" >&2
  exit 1
fi
echo "serve gate: 51/51 responses, warm hits=$hits"
rm -rf "$serve_tmp"
# The load bench enforces the latency/QPS contract -- >=50 QPS sustained
# on the mixed workload, warm hit rate strictly above cold, responses
# byte-identical at --jobs 1 vs --jobs 8 -- and refreshes the committed
# BENCH_serve.json artifact.
build/bench/bench_serve --out BENCH_serve.json | tail -n 2

echo "== stage 2g: bytecode-VM differential gate =="
# The VM differential suite proves the bytecode backend bit-identical to
# the AST walker on every corpus entry (verdicts, decision traces,
# witnesses), and bench_vm enforces the performance contract: the VM on
# its fiber scheduling substrate must execute the dynamic-stage sweep at
# least 5x faster than the interp reference, with every (entry, seed)
# fingerprint identical. Refreshes the committed BENCH_vm.json artifact.
(cd build && ctest -L vm --output-on-failure)
build/bench/bench_vm --out BENCH_vm.json --min-speedup 5 | tail -n 2

if [[ "${1:-}" == "--fast" ]]; then
  echo "== skipping TSan stage (--fast) =="
  exit 0
fi

echo "== stage 3: ThreadSanitizer build of the parallel suites =="
cmake -B build-tsan -S . -DDRBML_SANITIZE=thread >/dev/null
cmake --build build-tsan -j --target \
  parallel_test parallel_determinism_test detector_differential_test \
  explore_test metamorphic_test lint_test repair_test obs_test \
  vm_differential_test
(cd build-tsan && ctest -L parallel --output-on-failure)
echo "== all checks passed =="
